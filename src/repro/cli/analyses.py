"""The analysis command family: figures, tables, reports, what-ifs.

Every command here turns one study (loaded, generated, or read back
from a checkpoint) into paper-shaped text: ``figure``/``table``
reproduce single artefacts, ``report`` renders the whole set (and
sweeps radio models with ``--models``), ``headlines`` prints the
single-number findings, and ``whatif``/``recommend``/``longitudinal``/
``coalesce``/``app``/``summary``/``lab`` cover the counterfactual and
descriptive analyses.
"""

from __future__ import annotations

import argparse
import sys

from repro import StudyEnergy
from repro.core import (
    bytes_since_foreground,
    case_study_table,
    kill_policy_savings,
    persistence_durations,
    report,
    state_energy_fractions,
    top10_appearance_counts,
    top_consumers,
    trace_timeline,
)
from repro.core.appreport import app_report, render_app_report
from repro.core.headlines import headline_stats, totals_headline_stats
from repro.core.longitudinal import improved_apps, weekly_background_energy
from repro.core.readout import require_packet_detail
from repro.core.recommend import recommendation_report
from repro.core.whatif import os_coalescing_savings, savings_on_affected_days
from repro.errors import AnalysisError
from repro.exitcodes import EXIT_USAGE
from repro.lab import (
    CHROME,
    FIREFOX,
    STOCK_BROWSER,
    browser_background_experiment,
    push_library_experiment,
    xhr_test_page,
)
from repro.policy import (
    available_policies,
    evaluate_policy,
    get_policy,
    parse_params,
)
from repro.radio.registry import available_models, get_model
from repro.store import render_headline_rows
from repro.trace.summary import summarize
from repro.units import battery_fraction

from repro.cli._shared import (
    TABLE2_APPS,
    _add_checkpoint_arg,
    _add_store_args,
    _add_study_args,
    _checkpoint_readout,
    _figure_number,
    _load_dataset,
    _metrics,
    _store_render,
    _store_source,
    _study,
    _table_number,
)

__all__ = ["TABLE2_APPS"]

# One formatter behind the CLI, the store and `repro serve` — what
# makes their headline output byte-identical by construction.
_render_headlines = render_headline_rows


def _cmd_generate(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args)
    dataset.save(args.out)
    print(f"wrote {args.out}: {dataset}")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    number = args.number
    if args.store and number in (1, 2, 3):
        return _store_render(args, _store_source(args), f"fig{number}")
    if args.from_checkpoint:
        readout = _checkpoint_readout(args)
        if number == 1:
            print(report.render_fig1(top10_appearance_counts(readout)))
        elif number == 2:
            print(
                report.render_fig2(
                    top_consumers(readout, by="energy"),
                    top_consumers(readout, by="data"),
                )
            )
        elif number == 3:
            print(report.render_fig3(state_energy_fractions(readout)))
        else:
            require_packet_detail(readout, f"figure {number}")
        return 0
    dataset = _load_dataset(args)
    if number in (2, 3):
        study = _study(args, dataset)
    if number == 1:
        print(report.render_fig1(top10_appearance_counts(dataset)))
    elif number == 2:
        print(
            report.render_fig2(
                top_consumers(study, by="energy"), top_consumers(study, by="data")
            )
        )
    elif number == 3:
        print(report.render_fig3(state_energy_fractions(study)))
    elif number == 4:
        print(report.render_fig4(trace_timeline(dataset, args.app)))
    elif number == 5:
        print(report.render_fig5(persistence_durations(dataset, app=args.app)))
    elif number == 6:
        edges, totals = bytes_since_foreground(dataset)
        print(report.render_fig6(edges, totals))
    else:
        print(f"unknown figure {number}", file=sys.stderr)
        return 2
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    if args.store and args.number == 1:
        return _store_render(args, _store_source(args), "table1")
    if args.from_checkpoint:
        readout = _checkpoint_readout(args)
        if args.number == 1:
            print(report.render_table1(case_study_table(readout)))
        else:
            require_packet_detail(readout, f"table {args.number}")
        return 0
    dataset = _load_dataset(args)
    study = _study(args, dataset)
    if args.number == 1:
        print(report.render_table1(case_study_table(study)))
    elif args.number == 2:
        if args.policy:
            try:
                policy = get_policy(args.policy, parse_params(args.param))
            except AnalysisError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return EXIT_USAGE
            result = evaluate_policy(study, policy, apps=TABLE2_APPS)
            print(report.render_policy_table(result))
        else:
            results = [kill_policy_savings(study, app) for app in TABLE2_APPS]
            print(report.render_table2(results))
    else:
        print(f"unknown table {args.number}", file=sys.stderr)
        return 2
    return 0


def _cmd_headlines(args: argparse.Namespace) -> int:
    if args.store:
        # The store caches the totals-tier block (the same text
        # `--from-checkpoint` prints); the full batch set includes
        # per-packet headlines, which are not cacheable by this key.
        return _store_render(args, _store_source(args), "headlines")
    if args.from_checkpoint:
        readout = _checkpoint_readout(args)
        print(_render_headlines(totals_headline_stats(readout)))
        return 0
    study = _study(args)
    print(_render_headlines(headline_stats(study)))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    if getattr(args, "models", None):
        return _report_models(args)
    if args.from_checkpoint:
        readout = _checkpoint_readout(args)
        print(_render_headlines(totals_headline_stats(readout)))
        print()
        print(report.render_fig1(top10_appearance_counts(readout)))
        print()
        print(
            report.render_fig2(
                top_consumers(readout, by="energy"),
                top_consumers(readout, by="data"),
            )
        )
        print()
        print(report.render_fig3(state_energy_fractions(readout)))
        print()
        print(report.render_table1(case_study_table(readout)))
        print(
            "\n(totals-tier report from checkpoint; Figs 4-6, Table 2 and "
            "the remaining headlines replay packets — run `repro report` "
            "on the full study for those)"
        )
        return 0
    dataset = _load_dataset(args)
    study = _study(args, dataset)
    study.prepare_indexes()
    print(_render_headlines(headline_stats(study)))
    print()
    print(report.render_fig1(top10_appearance_counts(dataset)))
    print()
    print(
        report.render_fig2(
            top_consumers(study, by="energy"), top_consumers(study, by="data")
        )
    )
    print()
    print(report.render_fig3(state_energy_fractions(study)))
    print()
    print(report.render_fig4(trace_timeline(dataset, "com.android.chrome")))
    print()
    print(
        report.render_fig5(
            persistence_durations(dataset, app="com.android.chrome")
        )
    )
    print()
    edges, totals = bytes_since_foreground(dataset)
    print(report.render_fig6(edges, totals))
    print()
    print(report.render_table1(case_study_table(study)))
    print()
    results = [kill_policy_savings(study, app) for app in TABLE2_APPS]
    print(report.render_table2(results))
    return 0


def _report_models(args: argparse.Namespace) -> int:
    """``repro report --models lte,nr,...``: one study, every radio.

    The dataset is loaded (or generated) **once** and re-attributed
    under each named model; with ``--store`` each model's totals-tier
    headline block is served through the results store (keys differ by
    model, so a sweep re-run is pure cache hits). A checkpoint pins one
    model's attribution, so ``--from-checkpoint`` is refused here.
    """
    if args.from_checkpoint:
        print(
            "error: --models re-attributes the study per radio model; a "
            "checkpoint pins one model's attribution — drop "
            "--from-checkpoint (or run one report per checkpoint)",
            file=sys.stderr,
        )
        return EXIT_USAGE
    names = [name.strip() for name in args.models.split(",") if name.strip()]
    known = available_models()
    unknown = sorted(set(names) - set(known))
    if not names or unknown:
        what = ", ".join(unknown) if unknown else "(none given)"
        print(
            f"error: unknown radio model(s) {what} "
            f"(available: {', '.join(known)})",
            file=sys.stderr,
        )
        return EXIT_USAGE
    metrics = _metrics(args)
    dataset = _load_dataset(args)
    rows = []
    baseline = None
    for name in names:
        study = StudyEnergy(
            dataset,
            model=get_model(name),
            workers=getattr(args, "workers", 1),
            cache_dir=getattr(args, "cache_dir", None),
            metrics=metrics,
        )
        print(f"=== model: {name} ===")
        if args.store:
            code = _store_render(args, study, "headlines")
            if code != 0:
                return code
        else:
            print(_render_headlines(totals_headline_stats(study)))
        print()
        total = study.total_energy
        if baseline is None:
            baseline = total
        rows.append(
            (
                name,
                f"{total / 1e3:.1f}",
                f"{study.attributed_energy / 1e3:.1f}",
                f"{study.idle_energy / 1e3:.1f}",
                (
                    "baseline"
                    if baseline == total and name == names[0]
                    else f"{100 * (total - baseline) / baseline:+.1f}%"
                ),
            )
        )
    print(
        report.render_table(
            ["model", "total kJ", "attributed kJ", "idle kJ",
             f"vs {names[0]}"],
            rows,
            title=f"Radio-model sweep ({len(names)} model(s), one study)",
        )
    )
    return 0


def _cmd_whatif(args: argparse.Namespace) -> int:
    params = parse_params(args.param)
    if args.policy == "kill" and "idle_days" not in params:
        params["idle_days"] = args.idle_days
    try:
        policy = get_policy(args.policy, params)
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if args.from_checkpoint:
        # Counterfactuals replay packets: the gate refuses totals-only
        # checkpoints with a typed NeedsPacketDetail (exit 3).
        readout = _checkpoint_readout(args)
        evaluate_policy(readout, policy)
        return 0
    dataset = _load_dataset(args)
    study = _study(args, dataset)
    if args.policy == "kill" and args.app:
        result = kill_policy_savings(study, args.app, idle_days=args.idle_days)
        print(report.render_table2([result]))
        print()
        try:
            pct = savings_on_affected_days(study, args.app, args.idle_days)
            print(f"affected-days total savings: {pct:.1f}%")
        except AnalysisError:
            print(
                "affected-days total savings: policy never activates in this "
                "study (no 3-day idle stretch)"
            )
        return 0
    detail = (args.app,) if args.app else TABLE2_APPS
    result = evaluate_policy(study, policy, apps=detail)
    print(report.render_policy_table(result))
    return 0


def _cmd_recommend(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args)
    study = _study(args, dataset)
    recommendations = recommendation_report(study, top_n=args.top)
    total_days = sum(t.duration_days for t in dataset)
    rows = [
        (
            r.app,
            f"{r.total_energy / 1e3:.0f}",
            # Average battery share this app's radio energy costs one
            # user per day — the unit people feel.
            f"{100 * battery_fraction(r.total_energy) / max(total_days, 1e-9):.1f}%",
            r.primary.value,
            f"{r.batching_saving_pct:.0f}%" if r.batching_saving_pct else "-",
            f"{r.kill_saving_pct:.0f}%" if r.kill_saving_pct else "-",
            f"{r.lingering_energy_fraction * 100:.0f}%",
        )
        for r in recommendations
    ]
    print(
        report.render_table(
            [
                "app",
                "kJ",
                "battery/user-day",
                "primary recommendation",
                "batch",
                "idle-kill",
                "linger",
            ],
            rows,
            title="Per-app recommendations (§6 operationalised)",
        )
    )
    return 0


def _cmd_longitudinal(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args)
    study = _study(args, dataset)
    series = weekly_background_energy(study)
    print(
        report.render_table(
            ["week", "background kJ"],
            [(i + 1, f"{e / 1e3:.0f}") for i, e in enumerate(series.week_energy)],
            title="Weekly background energy (§3.1)",
        )
    )
    print(
        "\nmax week-over-week fluctuation: "
        f"{series.max_fluctuation * 100:.0f}% (paper: up to 60%)"
    )
    improved = improved_apps(study)
    if improved:
        print("\napps that became more energy-efficient over the study:")
        for app, comparison in improved.items():
            first, last = comparison.eras[0], comparison.eras[-1]
            print(
                f"  {app}: {first.update_frequency.describe()} -> "
                f"{last.update_frequency.describe()}, "
                f"J/day {first.joules_per_day:.0f} -> {last.joules_per_day:.0f}"
            )
    else:
        print("\nno apps flagged as improved in this window")
    return 0


def _cmd_app(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args)
    study = _study(args, dataset)
    print(render_app_report(app_report(study, args.app)))
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args)
    summary = summarize(dataset)
    print(
        report.render_table(
            ["user", "days", "packets", "MB", "apps", "sessions", "top app"],
            [
                (
                    u.user_id,
                    f"{u.days:.0f}",
                    u.packets,
                    f"{u.megabytes:.0f}",
                    u.apps_with_traffic,
                    u.sessions,
                    u.top_app,
                )
                for u in summary.users
            ],
            title="Per-user trace summary",
        )
    )
    print(
        f"\ncatalog: {summary.total_apps} apps, "
        f"{summary.apps_with_traffic} with traffic; "
        f"{summary.total_packets} packets, {summary.total_megabytes:.0f} MB"
    )
    print()
    print(
        report.render_table(
            ["category", "MB"],
            [(c, f"{v:.0f}") for c, v in summary.category_megabytes[:12]],
            title="Traffic by app category",
        )
    )
    return 0


def _cmd_coalesce(args: argparse.Namespace) -> int:
    if args.from_checkpoint:
        # Same typed refusal as `whatif`: coalescing re-attributes a
        # shifted timeline, which a totals checkpoint cannot replay.
        study = _checkpoint_readout(args)
    else:
        dataset = _load_dataset(args)
        study = _study(args, dataset)
    result = os_coalescing_savings(study, period=args.period)
    print(
        f"OS-coalesced background scheduling (window {args.period:.0f}s):\n"
        f"  energy saved: {result.savings_pct:.1f}% of attributed total\n"
        f"  packets delayed: {result.moved_packets}\n"
        f"  mean added delay: {result.mean_delay:.0f}s"
    )
    return 0


def _cmd_lab(args: argparse.Namespace) -> int:
    page = xhr_test_page()
    rows = []
    for browser in (CHROME, FIREFOX, STOCK_BROWSER):
        result = browser_background_experiment(browser, page)
        rows.append(
            (
                browser.name,
                result.phase_packets[0],
                result.phase_packets[1],
                result.phase_packets[2],
                f"{result.phase_energy[1] + result.phase_energy[2]:.0f}",
            )
        )
    print(
        report.render_table(
            ["browser", "fg pkts", "bg pkts", "screen-off pkts", "bg J"],
            rows,
            title="In-lab: XHR-every-second page across browsers",
        )
    )
    push = push_library_experiment()
    print(
        f"\npush library: {push.requests} nearly-empty requests over "
        f"{push.duration / 3600:.0f} h for {push.notifications} visible "
        f"notification(s); {push.total_energy:.0f} J "
        f"({push.joules_per_notification:.0f} J/notification)"
    )
    return 0


def _cmd_import(args: argparse.Namespace) -> int:
    from repro.trace.io_text import dataset_from_csv

    pairs = []
    for spec in args.user:
        parts = spec.split(":")
        packets = parts[0]
        events = parts[1] if len(parts) > 1 and parts[1] else None
        pairs.append((packets, events))
    dataset = dataset_from_csv(pairs)
    dataset.save(args.out)
    print(f"wrote {args.out}: {dataset}")
    return 0


# ----------------------------------------------------------------------
# Subparser registration (called by repro.cli.parser in menu order)
# ----------------------------------------------------------------------
def add_generate(sub) -> None:
    p = sub.add_parser("generate", help="generate and save a study")
    _add_study_args(p)
    p.add_argument("--out", default="study.npz")
    p.set_defaults(func=_cmd_generate)


def add_figure(sub) -> None:
    p = sub.add_parser("figure", help="reproduce one figure")
    p.add_argument(
        "number", type=_figure_number, help="1-6, 'fig3' also accepted"
    )
    p.add_argument("--app", default="com.android.chrome")
    _add_study_args(p)
    _add_checkpoint_arg(p)
    _add_store_args(p)
    p.set_defaults(func=_cmd_figure)


def add_table(sub) -> None:
    p = sub.add_parser("table", help="reproduce one table")
    p.add_argument(
        "number", type=_table_number, help="1-2, 'table1' also accepted"
    )
    p.add_argument(
        "--policy",
        choices=available_policies(),
        help="render table 2 for one counterfactual policy",
    )
    p.add_argument(
        "--param",
        action="append",
        metavar="KEY=VALUE",
        help="policy parameter override (repeatable)",
    )
    _add_study_args(p)
    _add_checkpoint_arg(p)
    _add_store_args(p)
    p.set_defaults(func=_cmd_table)


def add_report(sub) -> None:
    p = sub.add_parser(
        "report", help="full report: headlines + all figures/tables"
    )
    p.add_argument(
        "--models",
        metavar="NAME[,NAME...]",
        help=(
            "sweep the totals-tier report across radio models (e.g. "
            "lte,nr): one study, re-attributed per model, with a "
            "cross-model diff table; pairs with --store for cached "
            "re-runs"
        ),
    )
    _add_study_args(p)
    _add_checkpoint_arg(p)
    _add_store_args(p)
    p.set_defaults(func=_cmd_report)


def add_headlines(sub) -> None:
    p = sub.add_parser(
        "headlines", help="the paper's single-number findings"
    )
    _add_study_args(p)
    _add_checkpoint_arg(p)
    _add_store_args(p)
    p.set_defaults(func=_cmd_headlines)


def add_whatif(sub) -> None:
    p = sub.add_parser(
        "whatif", help="counterfactual policy savings (kill, doze, ...)"
    )
    p.add_argument("--app", help="break out one app Table-2 style")
    p.add_argument("--idle-days", type=int, default=3)
    p.add_argument(
        "--policy",
        default="kill",
        choices=available_policies(),
        help="counterfactual policy to evaluate",
    )
    p.add_argument(
        "--param",
        action="append",
        metavar="KEY=VALUE",
        help="policy parameter override (repeatable)",
    )
    _add_study_args(p)
    _add_checkpoint_arg(p)
    p.set_defaults(func=_cmd_whatif)


def add_recommend(sub) -> None:
    p = sub.add_parser(
        "recommend", help="per-app efficiency recommendations (§6)"
    )
    p.add_argument("--top", type=int, default=15)
    _add_study_args(p)
    p.set_defaults(func=_cmd_recommend)


def add_longitudinal(sub) -> None:
    p = sub.add_parser(
        "longitudinal", help="weekly trends and improved apps (§3.1)"
    )
    _add_study_args(p)
    p.set_defaults(func=_cmd_longitudinal)


def add_import(sub) -> None:
    p = sub.add_parser(
        "import", help="build a dataset from packets/events CSVs"
    )
    p.add_argument(
        "user",
        nargs="+",
        help="one PACKETS_CSV[:EVENTS_CSV] per user",
    )
    p.add_argument("--out", default="study.npz")
    p.set_defaults(func=_cmd_import)


def add_app(sub) -> None:
    p = sub.add_parser("app", help="single-app deep dive")
    p.add_argument("--app", required=True)
    _add_study_args(p)
    p.set_defaults(func=_cmd_app)


def add_summary(sub) -> None:
    p = sub.add_parser("summary", help="structural overview of a study")
    _add_study_args(p)
    p.set_defaults(func=_cmd_summary)


def add_coalesce(sub) -> None:
    p = sub.add_parser(
        "coalesce", help="OS-managed background batching what-if (§6)"
    )
    p.add_argument("--period", type=float, default=1800.0)
    _add_study_args(p)
    _add_checkpoint_arg(p)
    p.set_defaults(func=_cmd_coalesce)


def add_lab(sub) -> None:
    p = sub.add_parser(
        "lab", help="in-lab browser & push-library experiments"
    )
    p.set_defaults(func=_cmd_lab)
