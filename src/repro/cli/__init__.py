"""Command-line interface.

::

    repro generate --users 20 --days 56 --out study.npz
    repro figure 3 --dataset study.npz
    repro table 1 --users 10 --days 28
    repro report --users 20 --days 28
    repro report --models lte,nr --users 10 --days 14
    repro whatif --app com.sina.weibo --idle-days 3
    repro lab

Every analysis command accepts either ``--dataset FILE`` (a saved
study) or generation parameters (``--users/--days/--seed``), in which
case the study is generated on the fly. All of them also take
``--workers N`` (parallel generation + attribution; 0 = one per CPU),
``--cache-dir DIR`` (reuse attribution across runs over the same
dataset) and ``--metrics-json FILE`` (timings, throughput and cache
counters; ``-`` for stdout).

``figure``, ``table``, ``report`` and ``headlines`` additionally take
``--from-checkpoint CK.npz``: the totals-tier analyses (Figs 1-3,
Table 1, the background headlines) then run from a finished
``repro ingest`` checkpoint — byte-identical output, no packet arrays
ever loaded. Analyses that replay packets (Figs 4-6, Table 2, the
what-ifs) exit with a typed error naming the batch command to run
instead::

    repro ingest --dataset study.npz --checkpoint ck.npz
    repro figure fig3 --from-checkpoint ck.npz

``--store DIR`` (on ``figure 1-3``, ``table 1`` and ``headlines``)
answers from a persistent results store — first run renders and
caches, repeat runs are one lookup; ``--store-only`` never renders
(exit 4 on a miss). ``repro serve`` exposes the same artefacts over
HTTP with ETag revalidation, and ``repro store ls|gc|invalidate``
maintains a store directory. The contract is docs/SERVING.md::

    repro ingest --dataset study.npz --checkpoint ck.npz
    repro serve --from-checkpoint ck.npz --store results/ --port 8080
    curl http://127.0.0.1:8080/figures/fig3

Sharded runs pick their executor with ``--transport``: ``repro shard
run PLAN --transport http --workers URL,URL`` places shards on a pool
of ``repro shard worker`` processes (docs/SCALING.md documents the
worker contract); a worker-pool failure that leaves shards unplaced is
exit 8 (:data:`~repro.exitcodes.EXIT_TRANSPORT_FAILED`).

This package is the CLI: one module per command family
(:mod:`~repro.cli.analyses`, :mod:`~repro.cli.serving`,
:mod:`~repro.cli.streaming`, :mod:`~repro.cli.sharding`) over the
shared helper kit (:mod:`~repro.cli._shared`), composed by
:mod:`~repro.cli.parser`. ``repro.cli`` re-exports the public surface
— ``main``, ``build_parser``, the ``EXIT_*`` codes and
``TABLE2_APPS`` — so import sites never see the layout.
"""

# Exit codes live in repro.exitcodes (the one table docs and tests
# check against); the names below are re-exported here because this
# package has always been their import site.
from repro.exitcodes import (
    EXIT_FOLLOW_INTERRUPTED,
    EXIT_NEEDS_PACKET_DETAIL,
    EXIT_OK,
    EXIT_SHARD_INCOMPLETE,
    EXIT_SOURCE_TRUNCATED,
    EXIT_STORE_MISS,
    EXIT_TRANSPORT_FAILED,
    EXIT_USAGE,
)

from repro.cli._shared import TABLE2_APPS
from repro.cli.parser import build_parser, main

__all__ = [
    "EXIT_FOLLOW_INTERRUPTED",
    "EXIT_NEEDS_PACKET_DETAIL",
    "EXIT_OK",
    "EXIT_SHARD_INCOMPLETE",
    "EXIT_SOURCE_TRUNCATED",
    "EXIT_STORE_MISS",
    "EXIT_TRANSPORT_FAILED",
    "EXIT_USAGE",
    "TABLE2_APPS",
    "build_parser",
    "main",
]
