"""The streaming command family: bounded-memory ingest and live follow.

``repro ingest`` streams one study through the attribution engine with
checkpoint/resume; ``--shards N`` flips it into the one-box sharded
path (plan + run + merge, see :mod:`repro.cli.sharding`), where
``--workers`` may name either a local process count or a remote
``repro shard worker`` URL pool. ``repro follow`` tails a growing
source and maintains rolling windows.
"""

from __future__ import annotations

import argparse
import sys

from repro.exitcodes import EXIT_FOLLOW_INTERRUPTED, EXIT_OK, EXIT_USAGE
from repro.core import report
from repro.follow import (
    DEFAULT_WINDOWS,
    Follower,
    NpzDropSource,
    TailCsvSource,
    parse_window_spec,
)
from repro.radio.registry import available_models, get_model
from repro.shard.transport import parse_worker_spec
from repro.store import ResultStore
from repro.stream import DEFAULT_CHUNK_SIZE, StreamIngestor

from repro.cli._shared import _metrics, _stream_source
from repro.cli.sharding import _add_transport_args, _ingest_sharded


def _cmd_ingest(args: argparse.Namespace) -> int:
    metrics = _metrics(args)
    source = _stream_source(args)
    if source is None:
        print(
            "ingest needs --dataset FILE or --user PACKETS_CSV[:EVENTS_CSV]",
            file=sys.stderr,
        )
        return 2
    try:
        workers = parse_worker_spec(args.workers)
    except ValueError:
        print(
            f"ingest --workers must be a process count or a worker-URL "
            f"list: {args.workers!r}",
            file=sys.stderr,
        )
        return 2
    if args.shards:
        return _ingest_sharded(args, source, metrics, workers)
    if isinstance(workers, list) or getattr(args, "transport", None) == "http":
        print(
            "a remote worker pool executes *shards*: add --shards N to "
            "use --transport http / --workers URL[,URL...]",
            file=sys.stderr,
        )
        return EXIT_USAGE
    ingestor = StreamIngestor(
        source,
        model=get_model(args.model),
        workers=workers,
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        metrics=metrics,
        retries=args.retries,
        task_timeout=args.task_timeout,
        quarantine=args.quarantine,
        cadence=not args.no_cadence,
    )
    result = ingestor.run(resume=args.resume, max_chunks=args.max_chunks)
    counters = metrics.as_dict()["counters"]
    if result is None:
        print(
            f"stopped after {counters.get('stream.chunks', 0)} chunks; "
            f"checkpoint written to {args.checkpoint} "
            "(continue with --resume)"
        )
        return 0
    energy = result.energy_by_app()
    top = sorted(energy.items(), key=lambda kv: kv[1], reverse=True)
    rows = [
        (source.registry.name_of(app), f"{joules / 1e3:.1f}")
        for app, joules in top[: args.top]
    ]
    print(
        report.render_table(
            ["app", "kJ"],
            rows,
            title=f"Streamed per-app energy (top {min(args.top, len(rows))})",
        )
    )
    print(
        f"\nusers: {len(result.users)}  chunks: "
        f"{counters.get('stream.chunks', 0)}  checkpoints: "
        f"{counters.get('stream.checkpoints', 0)}"
    )
    dropped_rows = counters.get("faults.rows_quarantined", 0)
    if dropped_rows or result.failures:
        print(
            f"quarantined: {dropped_rows} malformed row(s), "
            f"{len(result.failures)} user(s) "
            "(see faults.* counters in --metrics-json)"
        )
    print(
        f"attributed: {result.attributed_energy / 1e3:.1f} kJ  "
        f"idle: {result.idle_energy / 1e3:.1f} kJ  "
        f"total: {result.total_energy / 1e3:.1f} kJ"
    )
    return 0


def _cmd_follow(args: argparse.Namespace) -> int:
    metrics = _metrics(args)
    if bool(args.user) == bool(args.drops):
        print(
            "follow needs exactly one of --user PACKETS_CSV[:EVENTS_CSV] "
            "(repeatable) or --drops DIR",
            file=sys.stderr,
        )
        return EXIT_USAGE
    if args.drops:
        source = NpzDropSource(args.drops, chunk_size=args.chunk_size)
    else:
        pairs = []
        for spec in args.user:
            parts = spec.split(":")
            events = parts[1] if len(parts) > 1 and parts[1] else None
            pairs.append((parts[0], events))
        source = TailCsvSource(pairs, chunk_size=args.chunk_size)
    windows = (
        tuple(parse_window_spec(text) for text in args.window)
        if args.window
        else DEFAULT_WINDOWS
    )
    store = (
        ResultStore(args.store, metrics=metrics) if args.store else None
    )
    follower = Follower(
        source,
        checkpoint_path=args.checkpoint,
        model=get_model(args.model),
        windows=windows,
        store=store,
        checkpoint_every=args.checkpoint_every,
        poll_interval=args.poll_interval,
        max_pending=args.max_pending,
        top_n=args.top_n,
        metrics=metrics,
    )
    why = follower.run(
        resume=args.resume,
        max_polls=args.max_polls,
        idle_exit=args.idle_exit,
    )
    counters = metrics.as_dict()["counters"]
    print(
        f"follow {why}: {counters.get('follow.chunks', 0)} chunk(s), "
        f"{counters.get('follow.packets', 0)} packet(s), "
        f"{len(follower.headline_log)} headline(s); checkpoint "
        f"{args.checkpoint} (continue with --resume)",
        flush=True,
    )
    if why == "interrupted":
        return EXIT_FOLLOW_INTERRUPTED
    return EXIT_OK


def add_follow(sub) -> None:
    p = sub.add_parser(
        "follow",
        help=(
            "live monitoring: tail a growing source, keep rolling "
            "windows, emit headlines"
        ),
    )
    p.add_argument(
        "--user",
        action="append",
        help="tail one user's PACKETS_CSV[:EVENTS_CSV] (repeatable)",
    )
    p.add_argument(
        "--drops",
        metavar="DIR",
        help="follow a directory collecting per-day .npz study drops",
    )
    p.add_argument(
        "--checkpoint",
        metavar="FILE",
        required=True,
        help="follow state file (windows, cursors, headline state)",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="continue from --checkpoint instead of starting over",
    )
    p.add_argument(
        "--checkpoint-every",
        type=int,
        default=16,
        metavar="N",
        help="checkpoint every N processed chunks (and on SIGTERM/SIGINT)",
    )
    p.add_argument(
        "--store",
        metavar="DIR",
        help=(
            "results store to publish live windows into (serve them "
            "with `repro serve --live --store DIR`)"
        ),
    )
    p.add_argument(
        "--window",
        action="append",
        metavar="NAME=SPAN:BUCKET",
        help=(
            "maintain this rolling window (seconds; repeatable; "
            "default hour=3600:300 day=86400:7200 week=604800:43200)"
        ),
    )
    p.add_argument(
        "--poll-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="sleep this long between polls that found no new data",
    )
    p.add_argument(
        "--max-polls",
        type=int,
        metavar="N",
        help="stop after N poll iterations (for tests and smoke runs)",
    )
    p.add_argument(
        "--idle-exit",
        type=int,
        metavar="N",
        help="exit once N consecutive polls found no new data",
    )
    p.add_argument(
        "--max-pending",
        type=int,
        default=64,
        metavar="N",
        help=(
            "bound on queued chunks awaiting attribution (backpressure: "
            "polling pauses at the bound; see the follow.lag_chunks gauge)"
        ),
    )
    p.add_argument(
        "--top-n", type=int, default=5, help="headline top-N size"
    )
    p.add_argument(
        "--chunk-size",
        type=int,
        default=DEFAULT_CHUNK_SIZE,
        help="maximum packets held in memory per chunk",
    )
    p.add_argument(
        "--model",
        default="lte",
        choices=available_models(),
        help="radio power model for energy attribution",
    )
    p.add_argument(
        "--metrics-json",
        metavar="FILE",
        help="write run metrics as JSON; '-' for stdout",
    )
    p.set_defaults(func=_cmd_follow)


def add_ingest(sub) -> None:
    p = sub.add_parser(
        "ingest",
        help="streaming ingestion: bounded-memory, checkpoint/resume",
    )
    p.add_argument("--dataset", help="stream a saved study (.npz)")
    p.add_argument(
        "--user",
        action="append",
        help="stream one user's PACKETS_CSV[:EVENTS_CSV] (repeatable)",
    )
    p.add_argument(
        "--chunk-size",
        type=int,
        default=DEFAULT_CHUNK_SIZE,
        help="maximum packets held in memory per chunk",
    )
    p.add_argument(
        "--duration",
        type=float,
        help="CSV observation window (default: latest event, ceil to day)",
    )
    p.add_argument("--checkpoint", metavar="FILE", help="checkpoint file")
    p.add_argument(
        "--resume",
        action="store_true",
        help="continue from --checkpoint instead of starting over",
    )
    p.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="N",
        help="write a checkpoint every N chunks (0 = only at the end)",
    )
    p.add_argument(
        "--max-chunks",
        type=int,
        metavar="N",
        help="stop after N chunks, checkpoint, and exit (bounded slice)",
    )
    p.add_argument(
        "--model",
        default="lte",
        choices=available_models(),
        help="radio power model for energy attribution",
    )
    p.add_argument(
        "--workers",
        default="1",
        metavar="N|URL[,URL...]",
        help=(
            "chunk workers / users in flight (0 = one per CPU), or — "
            "with --shards — the `repro shard worker` URL pool to "
            "execute shards on"
        ),
    )
    _add_transport_args(p)
    p.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="retry a failed/crashed chunk task N times before giving up",
    )
    p.add_argument(
        "--task-timeout",
        type=float,
        metavar="SECONDS",
        help="declare a chunk task hung after this long and rebuild the pool",
    )
    p.add_argument(
        "--quarantine",
        action="store_true",
        help=(
            "keep going past bad input: drop malformed CSV rows and "
            "retry-exhausted users, reporting both via faults.* counters"
        ),
    )
    p.add_argument(
        "--no-cadence",
        action="store_true",
        help=(
            "skip background flow/burst cadence tracking (Table 1 then "
            "needs the batch pipeline; Figs 1-3 are unaffected)"
        ),
    )
    p.add_argument(
        "--shards",
        type=int,
        metavar="N",
        help=(
            "one-box sharded ingest: plan N user-shards, run them in "
            "parallel (--workers shard processes or worker URLs), merge "
            "into --checkpoint — bit-identical to the unsharded run"
        ),
    )
    p.add_argument("--top", type=int, default=15, help="apps to print")
    p.add_argument(
        "--metrics-json",
        metavar="FILE",
        help="write run metrics as JSON; '-' for stdout",
    )
    p.set_defaults(func=_cmd_ingest)
