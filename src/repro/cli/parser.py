"""The composed argument parser and the ``main`` entry point.

Each command family module (:mod:`repro.cli.analyses`,
:mod:`repro.cli.serving`, :mod:`repro.cli.streaming`,
:mod:`repro.cli.sharding`) registers its own subparsers; this module
composes them — in the menu order the CLI has always shown — and owns
the typed-error → exit-code mapping around ``args.func``.
"""

from __future__ import annotations

import sys
from typing import List, Optional

import argparse

from repro import RunMetrics
from repro.errors import (
    NeedsPacketDetail,
    ShardIncomplete,
    SourceTruncated,
    TransportError,
)
from repro.exitcodes import (
    EXIT_NEEDS_PACKET_DETAIL,
    EXIT_SHARD_INCOMPLETE,
    EXIT_SOURCE_TRUNCATED,
    EXIT_TRANSPORT_FAILED,
)

from repro.cli import analyses, serving, sharding, streaming


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Revisiting Network Energy Efficiency of "
            "Mobile Apps' (IMC 2015)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    analyses.add_generate(sub)
    analyses.add_figure(sub)
    analyses.add_table(sub)
    analyses.add_report(sub)
    analyses.add_headlines(sub)
    serving.add_serve(sub)
    streaming.add_follow(sub)
    serving.add_store(sub)
    analyses.add_whatif(sub)
    analyses.add_recommend(sub)
    analyses.add_longitudinal(sub)
    analyses.add_import(sub)
    streaming.add_ingest(sub)
    sharding.add_shard(sub)
    analyses.add_app(sub)
    analyses.add_summary(sub)
    analyses.add_coalesce(sub)
    analyses.add_lab(sub)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point."""
    args = build_parser().parse_args(argv)
    metrics = RunMetrics()
    args._run_metrics = metrics
    try:
        with metrics.stage("command"):
            rc = args.func(args)
    except NeedsPacketDetail as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_NEEDS_PACKET_DETAIL
    except ShardIncomplete as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_SHARD_INCOMPLETE
    except TransportError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_TRANSPORT_FAILED
    except SourceTruncated as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_SOURCE_TRUNCATED
    out = getattr(args, "metrics_json", None)
    if out:
        metrics.write_json(out)
    return rc
