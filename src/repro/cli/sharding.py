"""The sharding command family: plan, run, merge — and the worker.

``repro shard run`` is where the transport seam surfaces: the default
``--transport local`` fans shards over this box's process pool exactly
as before, while ``--transport http --workers URL[,URL...]`` drives a
pool of ``repro shard worker`` processes through
:class:`~repro.shard.transport.HttpTransport` — same manifest, same
shard directory, same merge. ``--workers`` is polymorphic
(:func:`~repro.shard.transport.parse_worker_spec`): a bare count keeps
the local pool, anything with ``://`` is the remote pool, so
``--transport`` can usually be inferred and exists to catch mismatches
loudly.

``_ingest_sharded`` (the ``repro ingest --shards N`` one-box path)
rides the same transports, so a single command can plan, execute
remotely, and merge.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Union

from repro.core.readout import readout_from_checkpoint
from repro.exitcodes import EXIT_USAGE
from repro.metrics import RunMetrics
from repro.radio.registry import available_models
from repro.shard import (
    ShardManifest,
    default_shard_dir,
    make_transport,
    make_worker_server,
    merge_to_checkpoint,
    parse_worker_spec,
)
from repro.shard.transport import TRANSPORT_NAMES
from repro.stream import DEFAULT_CHUNK_SIZE

from repro.cli._shared import (
    _metrics,
    _print_readout_summary,
    _stream_source,
)


def _resolve_transport(
    args: argparse.Namespace, workers: Union[int, List[str]]
):
    """The transport a shard-running command asked for (or implied).

    ``--transport`` wins when given; otherwise a URL-list ``--workers``
    means http and anything else means local. Mismatches raise
    ``ValueError`` from :func:`make_transport` — callers turn that into
    a usage error.
    """
    name = getattr(args, "transport", None)
    if name is None:
        name = "http" if isinstance(workers, list) else "local"
    return make_transport(
        name,
        workers=workers,
        checkpoint_every=args.checkpoint_every,
        retries=args.retries,
        task_timeout=args.task_timeout,
        quarantine=args.quarantine,
        manifest_path=getattr(args, "manifest", None)
        or getattr(args, "_manifest_path", None),
    )


def _ingest_sharded(
    args: argparse.Namespace,
    source,
    metrics: RunMetrics,
    workers: Union[int, List[str]],
) -> int:
    """The one-box convenience path: plan + run + merge in one command.

    ``--checkpoint`` names the *merged* whole-study checkpoint; the plan
    lands next to it as ``<checkpoint>.plan.json`` and the per-shard
    checkpoints under ``<checkpoint>.plan.json.shards/``. Re-running
    the identical command resumes: complete shards are skipped, partial
    ones continue, and the merge re-emits the same bytes. With a URL
    ``--workers`` pool the shards execute on remote ``repro shard
    worker`` processes instead of local subprocesses — the merged
    checkpoint is the same either way.
    """
    if not args.checkpoint:
        print(
            "--shards needs --checkpoint FILE (the merged study "
            "checkpoint to write)",
            file=sys.stderr,
        )
        return 2
    manifest_path = Path(str(args.checkpoint) + ".plan.json")
    with metrics.stage("shard.plan"):
        if manifest_path.exists():
            manifest = ShardManifest.load(manifest_path)
            if (
                manifest.signature != source.signature()
                or manifest.n_shards != args.shards
            ):
                manifest = ShardManifest.plan(
                    source,
                    args.shards,
                    model_name=args.model,
                    cadence=not args.no_cadence,
                )
                manifest.save(manifest_path)
        else:
            manifest = ShardManifest.plan(
                source,
                args.shards,
                model_name=args.model,
                cadence=not args.no_cadence,
            )
            manifest.save(manifest_path)
    shard_dir = default_shard_dir(manifest_path)
    args._manifest_path = manifest_path
    try:
        transport = _resolve_transport(args, workers)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    transport.dispatch(manifest, shard_dir, metrics=metrics)
    merge_to_checkpoint(
        manifest,
        shard_dir,
        args.checkpoint,
        manifest_path=manifest_path,
        metrics=metrics,
    )
    result = readout_from_checkpoint(args.checkpoint)
    counters = metrics.as_dict()["counters"]
    _print_readout_summary(
        result,
        result.registry,
        args.top,
        f"Sharded per-app energy ({manifest.n_shards} shards)",
    )
    print(
        f"\nusers: {len(manifest.users)}  shards: {manifest.n_shards}  "
        f"chunks: {counters.get('stream.chunks', 0)}  "
        f"merged checkpoint: {args.checkpoint}"
    )
    return 0


def _cmd_shard(args: argparse.Namespace) -> int:
    metrics = _metrics(args)
    if args.shard_command == "plan":
        source = _stream_source(args)
        if source is None:
            print(
                "shard plan needs --dataset FILE or --user "
                "PACKETS_CSV[:EVENTS_CSV]",
                file=sys.stderr,
            )
            return 2
        with metrics.stage("shard.plan"):
            manifest = ShardManifest.plan(
                source,
                args.shards,
                model_name=args.model,
                cadence=not args.no_cadence,
            )
            manifest.save(args.out)
        sizes = [len(shard) for shard in manifest.shards]
        print(
            f"wrote {args.out}: {len(manifest.users)} users over "
            f"{manifest.n_shards} shard(s) {sizes}, "
            f"model={manifest.model_name}, digest={manifest.digest()}"
        )
        print(f"run with: repro shard run {args.out}")
        return 0

    if args.shard_command == "worker":
        return _cmd_shard_worker(args, metrics)

    manifest = ShardManifest.load(args.manifest)
    shard_dir = (
        Path(args.shard_dir)
        if args.shard_dir
        else default_shard_dir(args.manifest)
    )
    if args.shard_command == "run":
        try:
            workers = (
                parse_worker_spec(args.workers)
                if args.workers is not None
                else args.shard_workers
            )
            transport = _resolve_transport(args, workers)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_USAGE
        reports = transport.dispatch(
            manifest,
            shard_dir,
            indices=args.shard if args.shard else None,
            metrics=metrics,
            on_report=(
                None
                if args.quiet
                else lambda index, rep: print(
                    f"shard {index}: "
                    + (
                        "failed"
                        if not isinstance(rep, dict)
                        else (
                            "already complete"
                            if rep["skipped"]
                            else f"{rep['users']} user(s) ingested"
                        )
                    )
                )
            ),
        )
        done = sum(1 for rep in reports if rep["complete"])
        print(
            f"{done}/{len(reports)} shard(s) complete under {shard_dir}; "
            f"merge with: repro shard merge {args.manifest} --out "
            "MERGED.ckpt.npz"
        )
        return 0

    if args.shard_command == "merge":
        merge_to_checkpoint(
            manifest,
            shard_dir,
            args.out,
            manifest_path=args.manifest,
            metrics=metrics,
        )
        result = readout_from_checkpoint(args.out)
        print(
            f"merged {manifest.n_shards} shard(s), "
            f"{len(manifest.users)} user(s) into {args.out}"
        )
        print(
            f"total: {result.total_energy / 1e3:.1f} kJ  "
            f"(attributed {result.attributed_energy / 1e3:.1f} kJ, "
            f"idle {result.idle_energy / 1e3:.1f} kJ)"
        )
        print(
            "analyse with: repro figure fig3 --from-checkpoint "
            f"{args.out}"
        )
        return 0
    raise AssertionError(f"unknown shard command {args.shard_command!r}")


def _cmd_shard_worker(
    args: argparse.Namespace, metrics: RunMetrics
) -> int:
    """``repro shard worker``: serve shards of any plan over HTTP."""
    server = make_worker_server(
        args.workdir,
        host=args.host,
        port=args.port,
        metrics=metrics,
        quiet=args.quiet,
        checkpoint_every=args.checkpoint_every,
    )
    host, port = server.server_address[:2]
    # The banner is parseable on purpose: smoke scripts start workers
    # on --port 0 and scrape the bound port from this line.
    print(
        f"listening on http://{host}:{port} (workdir: {args.workdir})",
        flush=True,
    )
    try:
        if args.max_requests:
            for _ in range(args.max_requests):
                server.handle_request()
        else:
            server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


def _add_transport_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--transport",
        choices=TRANSPORT_NAMES,
        help=(
            "where shards execute: 'local' (process pool, default) or "
            "'http' (a pool of `repro shard worker` URLs); inferred "
            "from --workers when omitted"
        ),
    )


def add_shard(sub) -> None:
    p = sub.add_parser(
        "shard",
        help="shard-parallel ingestion: plan, execute and merge",
    )
    shard_sub = p.add_subparsers(dest="shard_command", required=True)
    sp = shard_sub.add_parser(
        "plan", help="partition a study's users into shard manifests"
    )
    sp.add_argument("--dataset", help="shard a saved study (.npz)")
    sp.add_argument(
        "--user",
        action="append",
        help="shard one user's PACKETS_CSV[:EVENTS_CSV] (repeatable)",
    )
    sp.add_argument(
        "--shards", type=int, required=True, metavar="N",
        help="number of shards to plan",
    )
    sp.add_argument(
        "--chunk-size",
        type=int,
        default=DEFAULT_CHUNK_SIZE,
        help="maximum packets held in memory per chunk",
    )
    sp.add_argument(
        "--duration",
        type=float,
        help="CSV observation window (default: latest event, ceil to day)",
    )
    sp.add_argument(
        "--model",
        default="lte",
        choices=available_models(),
        help="radio power model pinned into the plan",
    )
    sp.add_argument(
        "--quarantine",
        action="store_true",
        help="plan with malformed-CSV-row quarantine enabled",
    )
    sp.add_argument(
        "--no-cadence",
        action="store_true",
        help="plan without background cadence tracking",
    )
    sp.add_argument("--out", default="plan.json", help="manifest file")
    sp.add_argument(
        "--metrics-json",
        metavar="FILE",
        help="write run metrics as JSON; '-' for stdout",
    )
    sp.set_defaults(func=_cmd_shard)
    sp = shard_sub.add_parser(
        "run", help="execute shards of a plan to per-shard checkpoints"
    )
    sp.add_argument("manifest", help="plan written by `repro shard plan`")
    sp.add_argument(
        "--shard-dir",
        metavar="DIR",
        help="per-shard checkpoint directory (default: <manifest>.shards)",
    )
    sp.add_argument(
        "--shard",
        type=int,
        action="append",
        metavar="K",
        help="run only shard K (repeatable; default: all shards)",
    )
    sp.add_argument(
        "--shard-workers",
        type=int,
        default=0,
        metavar="N",
        help="shard processes at once (0 = one per CPU)",
    )
    _add_transport_args(sp)
    sp.add_argument(
        "--workers",
        metavar="N|URL[,URL...]",
        help=(
            "local process count, or the worker-URL pool for "
            "--transport http (overrides --shard-workers)"
        ),
    )
    sp.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="N",
        help="checkpoint each shard every N chunks (0 = only at the end)",
    )
    sp.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="retry a failed shard N times before reporting it",
    )
    sp.add_argument(
        "--task-timeout",
        type=float,
        metavar="SECONDS",
        help="per-chunk hang timeout inside each shard",
    )
    sp.add_argument(
        "--quarantine",
        action="store_true",
        help="drop malformed rows / poison users inside shards",
    )
    sp.add_argument(
        "--quiet", action="store_true", help="no per-shard progress lines"
    )
    sp.add_argument(
        "--metrics-json",
        metavar="FILE",
        help="write run metrics as JSON; '-' for stdout",
    )
    sp.set_defaults(func=_cmd_shard)
    sp = shard_sub.add_parser(
        "merge",
        help="fold per-shard checkpoints into one study checkpoint",
    )
    sp.add_argument("manifest", help="plan written by `repro shard plan`")
    sp.add_argument(
        "--shard-dir",
        metavar="DIR",
        help="per-shard checkpoint directory (default: <manifest>.shards)",
    )
    sp.add_argument(
        "--out",
        required=True,
        metavar="CK.npz",
        help="merged whole-study checkpoint to write",
    )
    sp.add_argument(
        "--metrics-json",
        metavar="FILE",
        help="write run metrics as JSON; '-' for stdout",
    )
    sp.set_defaults(func=_cmd_shard)
    sp = shard_sub.add_parser(
        "worker",
        help="serve this box as an HTTP shard executor (--transport http)",
    )
    sp.add_argument(
        "--workdir",
        required=True,
        metavar="DIR",
        help="where this worker lands per-plan shard checkpoints",
    )
    sp.add_argument("--host", default="127.0.0.1")
    sp.add_argument(
        "--port", type=int, default=0, help="0 picks a free port"
    )
    sp.add_argument(
        "--max-requests",
        type=int,
        metavar="N",
        help="exit after serving N requests (for tests and smoke runs)",
    )
    sp.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="N",
        help="checkpoint each shard every N chunks (0 = only at the end)",
    )
    sp.add_argument(
        "--quiet", action="store_true", help="suppress per-request logs"
    )
    sp.add_argument(
        "--metrics-json",
        metavar="FILE",
        help="write run metrics as JSON; '-' for stdout",
    )
    sp.set_defaults(func=_cmd_shard)
