"""Shared parser helpers and loaders for the CLI command families.

Every command family module builds on the same small kit: the
``--dataset``/``--users``/``--seed`` study arguments, the
``--from-checkpoint`` and ``--store`` switches, and the loaders that
turn parsed args into datasets, studies, stream sources and store
renders. Keeping the kit here keeps the family modules declarative —
a family module is its ``_cmd_*`` functions plus the ``add_*``
subparser registrations, nothing else.
"""

from __future__ import annotations

import argparse
import sys

from repro import RunMetrics, StudyConfig, StudyEnergy, generate_study
from repro.core import report
from repro.core.readout import readout_from_checkpoint
from repro.exitcodes import EXIT_STORE_MISS
from repro.radio.registry import available_models, get_model
from repro.store import ResultStore, render_analysis, store_key_for
from repro.store.render import ANALYSIS_KINDS
from repro.stream import CsvStreamSource, NpzStreamSource
from repro.trace.dataset import Dataset
from repro.workload.scenarios import available_scenarios, get_scenario

#: Table 2's six apps.
TABLE2_APPS = (
    "com.sec.spp.push",
    "com.sina.weibo",
    "com.facebook.orca",
    "com.espn.score_center",
    "com.foursquare.android",
    "com.sec.android.widgetapp.ap.hero.accuweather",
)


def _add_study_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", help="load a saved study (.npz)")
    parser.add_argument("--users", type=int, default=20)
    parser.add_argument("--days", type=float, default=28.0)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--model",
        default="lte",
        choices=available_models(),
        help="radio power model for energy attribution",
    )
    parser.add_argument(
        "--scenario",
        choices=available_scenarios(),
        help="named study scale (overrides --users/--days)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="processes for generation and attribution (0 = one per CPU)",
    )
    parser.add_argument(
        "--cache-dir",
        help="directory for the on-disk attribution cache",
    )
    parser.add_argument(
        "--metrics-json",
        metavar="FILE",
        help="write run metrics (timings, throughput, cache counters) "
        "as JSON; '-' for stdout",
    )


def _add_checkpoint_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--from-checkpoint",
        metavar="CK.npz",
        help=(
            "run the totals-tier analyses from a finished `repro ingest` "
            "checkpoint instead of loading or generating a study"
        ),
    )


def _add_store_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        metavar="DIR",
        help=(
            "serve the totals-tier result from a persistent results store: "
            "render once, answer repeat runs from the cached artefact"
        ),
    )
    parser.add_argument(
        "--store-only",
        action="store_true",
        help=(
            "never render: print the cached artefact or exit "
            f"{EXIT_STORE_MISS} on a store miss"
        ),
    )


def _metrics(args: argparse.Namespace) -> RunMetrics:
    return getattr(args, "_run_metrics", None) or RunMetrics()


def _study(
    args: argparse.Namespace, dataset=None, lazy: bool = False
) -> StudyEnergy:
    if dataset is None:
        dataset = _load_dataset(args)
    return StudyEnergy(
        dataset,
        model=get_model(getattr(args, "model", "lte")),
        workers=getattr(args, "workers", 1),
        cache_dir=getattr(args, "cache_dir", None),
        metrics=_metrics(args),
        lazy=lazy,
    )


def _load_dataset(args: argparse.Namespace) -> Dataset:
    metrics = _metrics(args)
    if args.dataset:
        with metrics.stage("load"):
            return Dataset.load(args.dataset)
    if getattr(args, "scenario", None):
        config = get_scenario(args.scenario, seed=args.seed)
    else:
        config = StudyConfig(
            n_users=args.users, duration_days=args.days, seed=args.seed
        )
    print(
        f"generating study: {config.n_users} users x "
        f"{config.duration_days:g} days (seed {config.seed}) ...",
        file=sys.stderr,
    )
    with metrics.stage("generate"):
        dataset = generate_study(config, workers=getattr(args, "workers", 1))
    metrics.count("generation.packets", dataset.total_packets)
    return dataset


def _figure_number(value: str) -> int:
    """Accept ``3`` and ``fig3`` alike."""
    number = value[3:] if value.lower().startswith("fig") else value
    try:
        parsed = int(number)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a figure: {value!r}")
    if parsed not in range(1, 7):
        raise argparse.ArgumentTypeError(f"unknown figure {value!r} (1-6)")
    return parsed


def _table_number(value: str) -> int:
    """Accept ``1`` and ``table1`` alike."""
    number = value[5:] if value.lower().startswith("table") else value
    try:
        parsed = int(number)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a table: {value!r}")
    if parsed not in (1, 2):
        raise argparse.ArgumentTypeError(f"unknown table {value!r} (1-2)")
    return parsed


def _checkpoint_readout(args: argparse.Namespace):
    """The totals-tier readout of ``--from-checkpoint``, timed."""
    with _metrics(args).stage("load"):
        return readout_from_checkpoint(args.from_checkpoint)


def _store_source(args: argparse.Namespace):
    """The readout a ``--store`` command keys and (maybe) renders from.

    A checkpoint readout when ``--from-checkpoint`` is given, otherwise
    a **lazy** :class:`StudyEnergy` — computing the store key only
    reads ``dataset.fingerprint()``, so a warm store hit never runs
    attribution at all.
    """
    if getattr(args, "from_checkpoint", None):
        return _checkpoint_readout(args)
    return _study(args, lazy=True)


def _store_render(args: argparse.Namespace, source, analysis: str) -> int:
    """Serve one totals-tier artefact through the results store."""
    store = ResultStore(args.store, metrics=_metrics(args))
    key = store_key_for(source, analysis)
    if args.store_only:
        result = store.get(key)
        if result is None:
            print(
                f"error: no cached {analysis} for key {key.digest()} in "
                f"{args.store} (drop --store-only to render it)",
                file=sys.stderr,
            )
            return EXIT_STORE_MISS
    else:
        result = store.get_or_render(
            key,
            lambda: render_analysis(analysis, source).encode("utf-8"),
            kind=ANALYSIS_KINDS[analysis],
        )
    print(result.text)
    return 0


def _stream_source(args: argparse.Namespace):
    """Build the chunk source from ``--dataset``/``--user`` flags, or
    ``None`` when neither was given (callers print usage and exit 2)."""
    chunk_size = args.chunk_size
    if args.dataset:
        return NpzStreamSource(args.dataset, chunk_size=chunk_size)
    if args.user:
        pairs = []
        for spec in args.user:
            parts = spec.split(":")
            events = parts[1] if len(parts) > 1 and parts[1] else None
            pairs.append((parts[0], events))
        return CsvStreamSource(
            pairs,
            chunk_size=chunk_size,
            duration=args.duration,
            quarantine_rows=getattr(args, "quarantine", False),
        )
    return None


def _print_readout_summary(result, registry, top: int, title: str) -> None:
    """The per-app table + totals footer shared by the ingest paths."""
    energy = result.energy_by_app()
    ranked = sorted(energy.items(), key=lambda kv: kv[1], reverse=True)
    rows = [
        (registry.name_of(app), f"{joules / 1e3:.1f}")
        for app, joules in ranked[:top]
    ]
    print(
        report.render_table(
            ["app", "kJ"],
            rows,
            title=f"{title} (top {min(top, len(rows))})",
        )
    )
    print(
        f"\nattributed: {result.attributed_energy / 1e3:.1f} kJ  "
        f"idle: {result.idle_energy / 1e3:.1f} kJ  "
        f"total: {result.total_energy / 1e3:.1f} kJ"
    )
