"""``python -m repro.cli`` — the same entry point as ``repro``."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
