"""The serving command family: the HTTP query API and store upkeep.

``repro serve`` exposes one study's figures/tables/headlines (or a
``repro follow`` publisher's live windows) over HTTP with ETag
revalidation; ``repro store ls|gc|invalidate`` maintains the results
store behind it. The contract is docs/SERVING.md.
"""

from __future__ import annotations

import argparse
import sys
import tempfile

from repro.core import report
from repro.exitcodes import EXIT_USAGE
from repro.store import ResultStore, make_server

from repro.cli._shared import (
    _add_checkpoint_arg,
    _add_study_args,
    _metrics,
    _store_source,
)


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.live:
        if not args.store:
            print(
                "serve --live needs --store DIR (the store a `repro "
                "follow` publisher writes into)",
                file=sys.stderr,
            )
            return EXIT_USAGE
        source = None
    else:
        source = _store_source(args)
    store_dir = args.store or tempfile.mkdtemp(prefix="repro-store-")
    store = ResultStore(store_dir, metrics=_metrics(args))
    server = make_server(
        source, store, host=args.host, port=args.port, quiet=args.quiet
    )
    host, port = server.server_address
    if args.live:
        print(
            f"serving live windows on http://{host}:{port} "
            f"(store: {store_dir})",
            flush=True,
        )
    else:
        print(
            f"serving study {server.study_id} on http://{host}:{port} "
            f"(store: {store_dir})",
            flush=True,
        )
    try:
        if args.max_requests:
            for _ in range(args.max_requests):
                server.handle_request()
        else:
            server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    store = ResultStore(args.store, metrics=_metrics(args))
    if args.store_command == "ls":
        entries = store.entries()
        rows = [
            (
                e.analysis,
                e.fingerprint[:12],
                e.policy,
                e.nbytes,
                e.hits,
                e.etag,
            )
            for e in entries
        ]
        print(
            report.render_table(
                ["analysis", "study", "policy", "bytes", "hits", "etag"],
                rows,
                title=f"results store: {args.store}",
            )
        )
        print(f"\n{len(entries)} entries")
        return 0
    if args.store_command == "gc":
        rows, files = store.gc()
        print(
            f"gc: removed {rows} unreadable entr{'y' if rows == 1 else 'ies'}"
            f", {files} orphan file(s)"
        )
        return 0
    if args.store_command == "invalidate":
        if not (args.fingerprint or args.analysis or args.all):
            print(
                "invalidate needs --fingerprint PREFIX, --analysis NAME "
                "or --all",
                file=sys.stderr,
            )
            return 2
        removed, files = store.invalidate(
            fingerprint=args.fingerprint,
            analysis=args.analysis,
            everything=args.all,
        )
        print(
            f"invalidated {removed} entr{'y' if removed == 1 else 'ies'} "
            f"({files} blob file(s) removed)"
        )
        return 0
    print(f"unknown store command {args.store_command!r}", file=sys.stderr)
    return 2


def add_serve(sub) -> None:
    p = sub.add_parser(
        "serve",
        help="HTTP query API over one study's figures/tables/headlines",
    )
    _add_study_args(p)
    _add_checkpoint_arg(p)
    p.add_argument(
        "--store",
        metavar="DIR",
        help=(
            "persistent results store backing the server (default: a "
            "fresh temp directory, warm for this process only)"
        ),
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=0, help="0 picks a free port"
    )
    p.add_argument(
        "--max-requests",
        type=int,
        metavar="N",
        help="exit after serving N requests (for tests and smoke runs)",
    )
    p.add_argument(
        "--quiet", action="store_true", help="suppress per-request logs"
    )
    p.add_argument(
        "--live",
        action="store_true",
        help=(
            "serve only the /live/ routes over the windows a `repro "
            "follow` publisher maintains in --store (no study readout)"
        ),
    )
    p.set_defaults(func=_cmd_serve)


def add_store(sub) -> None:
    p = sub.add_parser(
        "store", help="inspect and maintain a persistent results store"
    )
    p.add_argument(
        "--store", metavar="DIR", required=True, help="store directory"
    )
    store_sub = p.add_subparsers(dest="store_command", required=True)
    store_sub.add_parser("ls", help="list cached entries")
    store_sub.add_parser(
        "gc", help="drop unreadable entries, orphan blobs and stale locks"
    )
    sp = store_sub.add_parser(
        "invalidate", help="remove entries by study fingerprint or analysis"
    )
    sp.add_argument(
        "--fingerprint",
        metavar="PREFIX",
        help="remove entries whose study fingerprint starts with PREFIX",
    )
    sp.add_argument(
        "--analysis", help="remove entries of one analysis (e.g. fig3)"
    )
    sp.add_argument(
        "--all", action="store_true", help="empty the store entirely"
    )
    p.set_defaults(func=_cmd_store)
