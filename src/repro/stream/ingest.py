"""Streaming ingestion with incremental, batch-identical accounting.

:class:`StreamIngestor` drives a chunk source
(:class:`~repro.stream.chunks.CsvStreamSource` or
:class:`~repro.stream.chunks.NpzStreamSource`) through the resumable
radio layer (:class:`~repro.radio.streaming.StreamingAttribution`) and
folds every settled packet into per-user partial totals
(:class:`~repro.core.readout.KeyedTotals` — the carry-bincount
accumulator whose float additions replay the batch engine's exactly).
The finished :class:`StreamResult` is a totals-tier
:class:`~repro.core.readout.EnergyReadout`: it reports per-app,
per-(app, state) and per-state energy, byte volumes and idle floors
**bit-identical** to :class:`~repro.core.accounting.StudyEnergy` over
the same data — ``array_equal``, not ``allclose`` — while peak memory
stays O(workers × chunk), and every totals-tier analysis (Figs 1-3,
Table 1, headlines) consumes it directly.

Table 1 additionally needs flow counts and burst intervals; the
:class:`CadenceTracker` accumulates those incrementally at the paper's
default gaps while the packets go by, so the streamed result still
renders a byte-identical Table 1.

Periodic :class:`~repro.stream.checkpoint.StreamCheckpoint` snapshots
make the run killable: ``run(resume=True)`` reloads the carries and
partials and continues without recomputing a single settled packet.

Parallelism: chunk rounds fan out over a persistent
:class:`~repro.parallel.TaskPool` — workers do the vector math
(:meth:`StreamingAttribution.feed`) and ship back settled arrays plus
the new carry; the parent performs *all* float accumulation itself,
sequentially, so results are identical for any worker count.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.periodicity import DEFAULT_BURST_GAP
from repro.core.readout import (
    DEFAULT_FLOW_GAP,
    KeyedTotals,
    TotalsReadout,
    UserTotalsView,
    combined_app_state_keys,
)
from repro.errors import ReproError, StreamError, TaskFailure
from repro.metrics import RunMetrics
from repro.parallel import TaskPool, resolve_workers
from repro.radio.attribution import TailPolicy
from repro.radio.base import RadioModel
from repro.radio.lte import LTE_DEFAULT
from repro.radio.streaming import (
    FinalizedChunk,
    RadioCarry,
    StreamingAttribution,
)
from repro.stream.checkpoint import StreamCheckpoint, UserCheckpoint
from repro.stream.chunks import StreamSource
from repro.trace.arrays import PacketArray
from repro.trace.events import state_background_mask


class CadenceTracker:
    """Incremental background flow/burst cadence for one user.

    Tracks, chunk by chunk, exactly what the batch
    :meth:`~repro.core.accounting.StudyEnergy.background_cadence`
    computes from the full arrays: per-app background flow counts (an
    ``(app, conn)`` pair starts a new flow after ``flow_gap`` of
    silence — the strict ``>`` rule of
    :func:`~repro.trace.flow.reconstruct_flows`) and per-app burst
    starts plus inter-burst intervals (the strict ``>`` rule of
    :func:`~repro.core.periodicity.burst_starts`). Counts are integers,
    so chunking-exact; intervals are differences of the same ``float64``
    timestamps the batch path subtracts, so the pooled arrays are
    bit-identical too. The carried last-timestamps make every
    chunk-boundary gap the identical subtraction the whole-trace
    ``np.diff`` performs.
    """

    def __init__(
        self,
        flow_gap: float = DEFAULT_FLOW_GAP,
        burst_gap: float = DEFAULT_BURST_GAP,
    ) -> None:
        self.flow_gap = float(flow_gap)
        self.burst_gap = float(burst_gap)
        #: ``(app << 32) | conn`` -> last background packet timestamp.
        self._flow_last: Dict[int, float] = {}
        #: app -> background flows opened so far.
        self._flow_counts: Dict[int, int] = {}
        #: app -> last background packet timestamp (burst clustering).
        self._burst_last_ts: Dict[int, float] = {}
        #: app -> start time of the latest burst.
        self._burst_last_start: Dict[int, float] = {}
        #: app -> bursts counted so far.
        self._burst_counts: Dict[int, int] = {}
        #: app -> chronological list of inter-burst interval arrays.
        self._intervals: Dict[int, List[np.ndarray]] = {}

    def observe(self, packets: PacketArray) -> None:
        """Fold one raw (time-sorted) chunk into the cadence state."""
        if len(packets) == 0:
            return
        mask = state_background_mask(packets.states)
        if not mask.any():
            return
        ts = packets.timestamps[mask]
        apps = packets.apps.astype(np.int64)[mask]
        conns = packets.conns.astype(np.int64)[mask]
        self._observe_bursts(apps, ts)
        self._observe_flows(apps, conns, ts)

    def _observe_bursts(self, apps: np.ndarray, ts: np.ndarray) -> None:
        order = np.argsort(apps, kind="stable")
        s_apps = apps[order]
        s_ts = ts[order]
        group_starts = np.flatnonzero(
            np.concatenate([[True], s_apps[1:] != s_apps[:-1]])
        )
        bounds = np.append(group_starts, len(s_apps))
        for i, lo in enumerate(group_starts):
            app = int(s_apps[lo])
            t = s_ts[lo : bounds[i + 1]]
            last_ts = self._burst_last_ts.get(app)
            if last_ts is None:
                is_start = np.concatenate(
                    [[True], np.diff(t) > self.burst_gap]
                )
            else:
                prev = np.concatenate([[last_ts], t[:-1]])
                is_start = (t - prev) > self.burst_gap
            starts = t[is_start]
            if len(starts):
                last_start = self._burst_last_start.get(app)
                seq = (
                    starts
                    if last_start is None
                    else np.concatenate([[last_start], starts])
                )
                intervals = np.diff(seq)
                if len(intervals):
                    self._intervals.setdefault(app, []).append(intervals)
                self._burst_counts[app] = self._burst_counts.get(
                    app, 0
                ) + len(starts)
                self._burst_last_start[app] = float(starts[-1])
            self._burst_last_ts[app] = float(t[-1])

    def _observe_flows(
        self, apps: np.ndarray, conns: np.ndarray, ts: np.ndarray
    ) -> None:
        order = np.lexsort((conns, apps))
        s_apps = apps[order]
        s_conns = conns[order]
        s_ts = ts[order]
        group_starts = np.flatnonzero(
            np.concatenate(
                [
                    [True],
                    (s_apps[1:] != s_apps[:-1])
                    | (s_conns[1:] != s_conns[:-1]),
                ]
            )
        )
        bounds = np.append(group_starts, len(s_apps))
        for i, lo in enumerate(group_starts):
            app = int(s_apps[lo])
            key = (app << 32) | int(s_conns[lo])
            t = s_ts[lo : bounds[i + 1]]
            new_flows = int(np.count_nonzero(np.diff(t) > self.flow_gap))
            last = self._flow_last.get(key)
            if last is None or (t[0] - last) > self.flow_gap:
                new_flows += 1
            if new_flows:
                self._flow_counts[app] = (
                    self._flow_counts.get(app, 0) + new_flows
                )
            self._flow_last[key] = float(t[-1])

    def summary(self) -> Dict[int, Tuple[int, int, np.ndarray]]:
        """app -> (n_flows, n_bursts, intervals), for the readout."""
        out: Dict[int, Tuple[int, int, np.ndarray]] = {}
        for app in sorted(self._burst_last_ts):
            parts = self._intervals.get(app)
            intervals = (
                np.concatenate(parts) if parts else np.empty(0, np.float64)
            )
            out[app] = (
                self._flow_counts.get(app, 0),
                self._burst_counts.get(app, 0),
                intervals,
            )
        return out

    # ------------------------------------------------------------------
    # Checkpoint round-trip
    # ------------------------------------------------------------------
    def payload(self) -> Dict[str, np.ndarray]:
        """Fixed-name array members (checkpoint serialisation)."""
        flow_keys = np.array(sorted(self._flow_last), dtype=np.int64)
        burst_apps = np.array(sorted(self._burst_last_ts), dtype=np.int64)
        flow_count_apps = np.array(sorted(self._flow_counts), dtype=np.int64)
        parts = [
            (
                np.concatenate(self._intervals[int(app)])
                if int(app) in self._intervals
                else np.empty(0, np.float64)
            )
            for app in burst_apps
        ]
        offsets = np.zeros(len(parts) + 1, dtype=np.int64)
        if parts:
            offsets[1:] = np.cumsum([len(p) for p in parts])
        return {
            "flow_keys": flow_keys,
            "flow_last": np.array(
                [self._flow_last[int(k)] for k in flow_keys], dtype=np.float64
            ),
            "flow_count_apps": flow_count_apps,
            "flow_counts": np.array(
                [self._flow_counts[int(a)] for a in flow_count_apps],
                dtype=np.int64,
            ),
            "burst_apps": burst_apps,
            "burst_counts": np.array(
                [self._burst_counts.get(int(a), 0) for a in burst_apps],
                dtype=np.int64,
            ),
            "burst_last_ts": np.array(
                [self._burst_last_ts[int(a)] for a in burst_apps],
                dtype=np.float64,
            ),
            "burst_last_start": np.array(
                [
                    self._burst_last_start.get(int(a), np.nan)
                    for a in burst_apps
                ],
                dtype=np.float64,
            ),
            "interval_offsets": offsets,
            "intervals": (
                np.concatenate(parts) if parts else np.empty(0, np.float64)
            ),
        }

    @classmethod
    def from_payload(
        cls,
        payload: Dict[str, np.ndarray],
        flow_gap: float = DEFAULT_FLOW_GAP,
        burst_gap: float = DEFAULT_BURST_GAP,
    ) -> "CadenceTracker":
        tracker = cls(flow_gap, burst_gap)
        for k, v in zip(payload["flow_keys"], payload["flow_last"]):
            tracker._flow_last[int(k)] = float(v)
        for a, c in zip(payload["flow_count_apps"], payload["flow_counts"]):
            tracker._flow_counts[int(a)] = int(c)
        offsets = np.asarray(payload["interval_offsets"], np.int64)
        intervals = np.asarray(payload["intervals"], np.float64)
        for i, (app, count, last_ts, last_start) in enumerate(
            zip(
                payload["burst_apps"],
                payload["burst_counts"],
                payload["burst_last_ts"],
                payload["burst_last_start"],
            )
        ):
            app = int(app)
            tracker._burst_counts[app] = int(count)
            tracker._burst_last_ts[app] = float(last_ts)
            if not np.isnan(last_start):
                tracker._burst_last_start[app] = float(last_start)
            lo, hi = int(offsets[i]), int(offsets[i + 1])
            if hi > lo:
                tracker._intervals[app] = [intervals[lo:hi].copy()]
        return tracker


class UserStreamAccumulator:
    """One user's in-flight state: radio carry plus partial totals."""

    def __init__(
        self,
        user_id: int,
        window: Tuple[float, float],
        cadence: bool = True,
    ) -> None:
        self.user_id = user_id
        self.window = window
        self.carry: Optional[Dict[str, np.ndarray]] = None
        self.rows_consumed = 0
        self.done = False
        self.idle_energy = 0.0
        self.energy = KeyedTotals()
        self.app_state = KeyedTotals()
        self.bytes = KeyedTotals(dtype=np.int64)
        self.cadence: Optional[CadenceTracker] = (
            CadenceTracker() if cadence else None
        )

    def adopt(
        self,
        settled: Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
        carry: Optional[Dict[str, np.ndarray]],
    ) -> None:
        """Fold one round's settled packets in; take the new carry."""
        apps, states, sizes, per_packet = settled
        self.energy.add(apps, per_packet)
        self.app_state.add(combined_app_state_keys(apps, states), per_packet)
        self.bytes.add(
            combined_app_state_keys(apps, states), sizes.astype(np.int64)
        )
        if carry is not None:
            self.carry = carry

    def observe_chunk(self, packets: PacketArray) -> None:
        """Feed one raw chunk to the cadence tracker (if enabled)."""
        if self.cadence is not None:
            self.cadence.observe(packets)

    def finish(self, model: RadioModel, policy: TailPolicy) -> None:
        """Settle the pending packet and the idle floor."""
        carry = (
            RadioCarry.from_payload(self.carry)
            if self.carry is not None
            else None
        )
        sim = StreamingAttribution(model, policy, self.window, carry)
        settled, idle = sim.finish()
        self.adopt(
            (settled.apps, settled.states, settled.sizes, settled.per_packet),
            None,
        )
        self.idle_energy = idle
        self.done = True

    # ------------------------------------------------------------------
    # Checkpoint round-trip
    # ------------------------------------------------------------------
    def to_checkpoint(self) -> UserCheckpoint:
        if self.done:
            status = "done"
        elif self.rows_consumed or self.carry is not None:
            status = "running"
        else:
            status = "pending"
        energy_keys, energy_values = self.energy.payload()
        state_keys, state_values = self.app_state.payload()
        bytes_keys, bytes_values = self.bytes.payload()
        return UserCheckpoint(
            user_id=self.user_id,
            status=status,
            rows_consumed=self.rows_consumed,
            carry=self.carry,
            energy_keys=energy_keys,
            energy_values=energy_values,
            state_keys=state_keys,
            state_values=state_values,
            bytes_keys=bytes_keys,
            bytes_values=bytes_values,
            idle_energy=self.idle_energy,
            window=self.window,
            cadence=(
                self.cadence.payload() if self.cadence is not None else None
            ),
        )

    @classmethod
    def from_checkpoint(
        cls, saved: UserCheckpoint, window: Tuple[float, float]
    ) -> "UserStreamAccumulator":
        acc = cls(saved.user_id, window, cadence=saved.cadence is not None)
        acc.rows_consumed = saved.rows_consumed
        acc.carry = saved.carry
        acc.done = saved.status == "done"
        acc.idle_energy = saved.idle_energy
        acc.energy = KeyedTotals(saved.energy_keys, saved.energy_values)
        acc.app_state = KeyedTotals(saved.state_keys, saved.state_values)
        acc.bytes = KeyedTotals(
            saved.bytes_keys, saved.bytes_values, dtype=np.int64
        )
        if saved.cadence is not None:
            acc.cadence = CadenceTracker.from_payload(saved.cadence)
        return acc


class UserStreamResult(UserTotalsView):
    """One user's finished streaming totals (grouped views).

    A :class:`~repro.core.readout.UserTotalsView` built from the
    accumulator's finished :class:`~repro.core.readout.KeyedTotals` —
    the identical view :meth:`StudyEnergy.user_totals
    <repro.core.accounting.StudyEnergy.user_totals>` derives from the
    batch arrays.
    """

    def __init__(self, acc: UserStreamAccumulator) -> None:
        super().__init__(
            acc.user_id,
            acc.energy.as_dict(),
            acc.app_state.as_dict(),
            acc.bytes.as_dict(),
            acc.idle_energy,
        )


class StreamResult(TotalsReadout):
    """Study-wide totals of one completed streaming ingestion.

    A totals-tier :class:`~repro.core.readout.EnergyReadout`: every
    reduction replays the exact fold
    :class:`~repro.core.accounting.StudyEnergy` performs — users in
    ingestion order through
    :func:`~repro.core.readout.merge_keyed_totals`, idle via a
    sequential ``sum`` — so each is bit-identical to its batch
    counterpart. ``attributed_energy`` is the one exception: the batch
    scalar sums per-packet arrays whole, an association no stream can
    replay, so here it is defined as the fold of the (bit-identical)
    per-app totals.
    """

    def __init__(
        self,
        users: List[UserStreamResult],
        failures: Optional[Dict[int, TaskFailure]] = None,
        *,
        registry=None,
        windows=None,
        cadences=None,
        flow_gap: float = DEFAULT_FLOW_GAP,
        burst_gap: float = DEFAULT_BURST_GAP,
    ) -> None:
        super().__init__(
            users,
            registry=registry,
            windows=windows,
            cadences=cadences,
            flow_gap=flow_gap,
            burst_gap=burst_gap,
        )
        self.users = users
        self._by_id = {u.user_id: u for u in users}
        #: Quarantined users: ``{user_id: TaskFailure}``. Only populated
        #: when the ingestor ran with ``quarantine=True``; these users'
        #: partial totals are *excluded* from every reduction.
        self.failures: Dict[int, TaskFailure] = dict(failures or {})

    def user(self, user_id: int) -> UserStreamResult:
        """One user's totals."""
        try:
            return self._by_id[user_id]
        except KeyError:
            raise StreamError(f"unknown user id {user_id}") from None


class StreamChunkTask:
    """Picklable per-chunk radio step for :class:`~repro.parallel.TaskPool`.

    Unlike the batch :class:`~repro.radio.attribution.AttributionTask`,
    per-round data cannot live on the task (the pool ships the task
    once, at creation) — each item carries ``(user_id, window, carry
    payload, chunk records)`` and returns the settled arrays plus the
    advanced carry. No accumulation happens here, so any worker count
    yields identical results.
    """

    def __init__(self, model: RadioModel, policy: TailPolicy) -> None:
        self.model = model
        self.policy = policy

    def __call__(self, item):
        user_id, window, carry_payload, chunk_data = item
        carry = (
            RadioCarry.from_payload(carry_payload)
            if carry_payload is not None
            else None
        )
        sim = StreamingAttribution(self.model, self.policy, window, carry)
        settled = sim.feed(PacketArray(chunk_data))
        return (
            user_id,
            (settled.apps, settled.states, settled.sizes, settled.per_packet),
            sim.carry.to_payload(),
        )


class StreamIngestor:
    """Drive a chunk source to a batch-identical :class:`StreamResult`.

    Args:
        source: A :class:`~repro.stream.chunks.CsvStreamSource` or
            :class:`~repro.stream.chunks.NpzStreamSource`.
        model: Radio power model (default: the paper's LTE constants).
        policy: Tail-energy attribution rule.
        workers: Chunk rounds fan out over this many processes; also
            the number of users in flight at once, so peak memory is
            O(workers × chunk). ``1`` (default) stays in process.
        checkpoint_path: Where snapshots are written; required for
            ``checkpoint_every``, ``max_chunks`` and ``resume``.
        checkpoint_every: Snapshot after every N processed chunks
            (``0`` disables periodic snapshots).
        metrics: A shared :class:`~repro.metrics.RunMetrics`; a private
            one is created when omitted.
        retries: Retry a failed/crashed/timed-out chunk task this many
            times (exponential backoff) before giving up on it. Chunk
            tasks are pure, so a retried run stays bit-identical.
        task_timeout: Seconds to wait for one chunk task before
            declaring its worker hung and rebuilding the pool.
        quarantine: When a chunk task exhausts its retries, quarantine
            that *user* (drop them from the result, record the
            :class:`~repro.errors.TaskFailure` in
            :attr:`StreamResult.failures`) instead of aborting the run.
        cadence: Track background flow/burst cadence per user (at the
            paper's default gaps) so the streamed readout can render
            Table 1. Disable to shave the tracker's memory when only
            Figs 1-3 are needed.
    """

    def __init__(
        self,
        source: StreamSource,
        model: RadioModel = LTE_DEFAULT,
        policy: TailPolicy = TailPolicy.LAST_PACKET,
        *,
        workers: Optional[int] = 1,
        checkpoint_path: Optional[Union[str, Path]] = None,
        checkpoint_every: int = 0,
        metrics: Optional[RunMetrics] = None,
        retries: int = 0,
        task_timeout: Optional[float] = None,
        quarantine: bool = False,
        cadence: bool = True,
    ) -> None:
        self.source = source
        self.model = model
        self.policy = policy
        self.workers = resolve_workers(workers)
        self.checkpoint_path = (
            Path(checkpoint_path) if checkpoint_path is not None else None
        )
        self.checkpoint_every = int(checkpoint_every)
        self.metrics = metrics if metrics is not None else RunMetrics()
        self.retries = int(retries)
        self.task_timeout = task_timeout
        self.quarantine = bool(quarantine)
        self.cadence = bool(cadence)
        if self.checkpoint_every and self.checkpoint_path is None:
            raise StreamError("checkpoint_every needs a checkpoint_path")

    def run(
        self,
        resume: bool = False,
        max_chunks: Optional[int] = None,
    ) -> Optional[StreamResult]:
        """Ingest every user; return the study totals.

        With ``resume=True`` the run continues from
        ``checkpoint_path`` — done users are never re-read, a
        mid-stream user seeks past its consumed rows and picks its
        radio carry back up mid-tail. ``max_chunks`` stops the run
        after that many chunks, writes a checkpoint and returns
        ``None`` (the bounded-slice / kill-simulation mode).

        On an aborting :class:`~repro.errors.ReproError` (a poison
        task out of retries, a malformed row without quarantine, a
        truncated archive member) the accumulators are still consistent
        at the last completed round, so when a ``checkpoint_path`` is
        set a final checkpoint is written before the error propagates —
        the failed run costs one chunk round, not the whole ingestion.
        """
        if max_chunks is not None and self.checkpoint_path is None:
            raise StreamError("max_chunks needs a checkpoint_path")
        accs = self._initial_accumulators(resume)
        order = self.source.user_ids
        active = [uid for uid in order if not accs[uid].done]
        failed: Dict[int, TaskFailure] = {}
        iterators = {}
        chunks_this_run = 0
        since_checkpoint = 0
        task = StreamChunkTask(self.model, self.policy)
        self.source.quarantine.flush_to(self.metrics)
        try:
            with TaskPool(
                task,
                self.workers,
                retries=self.retries,
                task_timeout=self.task_timeout,
                quarantine=self.quarantine,
                metrics=self.metrics,
            ) as pool:
                while active:
                    items = []
                    chunk_rows = []
                    exhausted = []
                    with self.metrics.stage("stream.read"):
                        for uid in list(active):
                            if len(items) >= self.workers:
                                break
                            iterator = iterators.get(uid)
                            if iterator is None:
                                iterator = self.source.iter_chunks(
                                    uid, skip=accs[uid].rows_consumed
                                )
                                iterators[uid] = iterator
                            chunk = next(iterator, None)
                            if chunk is None:
                                exhausted.append(uid)
                            else:
                                acc = accs[uid]
                                items.append(
                                    (uid, acc.window, acc.carry, chunk.data)
                                )
                                chunk_rows.append(len(chunk))
                    with self.metrics.stage("stream.attribute"):
                        for uid in exhausted:
                            accs[uid].finish(self.model, self.policy)
                            active.remove(uid)
                            self.metrics.count("stream.users")
                        if items:
                            results = pool.map(items)
                            for item, result, rows in zip(
                                items, results, chunk_rows
                            ):
                                uid = item[0]
                                if isinstance(result, TaskFailure):
                                    # This user's chunk is poison even
                                    # after retries: drop the user, keep
                                    # the run (their checkpointed state
                                    # stays "running" for a later fix +
                                    # resume).
                                    active.remove(uid)
                                    failed[uid] = result
                                    self.metrics.count(
                                        "faults.users_quarantined"
                                    )
                                    continue
                                _, settled, carry = result
                                accs[uid].adopt(settled, carry)
                                accs[uid].observe_chunk(
                                    PacketArray(item[3])
                                )
                                accs[uid].rows_consumed += rows
                                self.metrics.count("stream.chunks")
                                self.metrics.count("stream.packets", rows)
                            chunks_this_run += len(items)
                            since_checkpoint += len(items)
                    if (
                        max_chunks is not None
                        and chunks_this_run >= max_chunks
                    ):
                        if active:
                            self._save_checkpoint(accs, order)
                            return None
                        break
                    if (
                        self.checkpoint_every
                        and since_checkpoint >= self.checkpoint_every
                        and active
                    ):
                        self._save_checkpoint(accs, order)
                        since_checkpoint = 0
        except ReproError:
            if self.checkpoint_path is not None:
                self._save_checkpoint(accs, order)
            raise
        ok = [uid for uid in order if uid not in failed]
        result = StreamResult(
            [UserStreamResult(accs[uid]) for uid in ok],
            failures=failed,
            registry=self.source.registry,
            windows={uid: self.source.window(uid) for uid in ok},
            cadences=(
                {uid: accs[uid].cadence.summary() for uid in ok}
                if all(accs[uid].cadence is not None for uid in ok)
                else None
            ),
        )
        if self.checkpoint_path is not None:
            self._save_checkpoint(accs, order)
        return result

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def _initial_accumulators(
        self, resume: bool
    ) -> Dict[int, UserStreamAccumulator]:
        order = self.source.user_ids
        if not resume:
            return {
                uid: UserStreamAccumulator(
                    uid, self.source.window(uid), cadence=self.cadence
                )
                for uid in order
            }
        if self.checkpoint_path is None:
            raise StreamError("resume needs a checkpoint_path")
        checkpoint = StreamCheckpoint.load(self.checkpoint_path)
        if checkpoint.loaded_from_fallback:
            self.metrics.count("faults.checkpoint_fallback")
        checkpoint.verify(
            self.source.signature(), self.model, self.policy
        )
        saved = {user.user_id: user for user in checkpoint.users}
        if set(saved) != set(order):
            raise StreamError(
                "checkpoint user set does not match the source"
            )
        return {
            uid: UserStreamAccumulator.from_checkpoint(
                saved[uid], self.source.window(uid)
            )
            for uid in order
        }

    def _save_checkpoint(
        self, accs: Dict[int, UserStreamAccumulator], order: List[int]
    ) -> None:
        with self.metrics.stage("stream.checkpoint"):
            checkpoint = StreamCheckpoint(
                self.source.signature(),
                self.model,
                self.policy,
                [accs[uid].to_checkpoint() for uid in order],
                registry_json=self.source.registry.to_json(),
                has_cadence=all(
                    accs[uid].cadence is not None for uid in order
                ),
                cadence_flow_gap=DEFAULT_FLOW_GAP,
                cadence_burst_gap=DEFAULT_BURST_GAP,
            )
            checkpoint.save(self.checkpoint_path)
            self.metrics.count("stream.checkpoints")
