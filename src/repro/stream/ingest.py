"""Streaming ingestion driver with incremental, batch-identical accounting.

:class:`StreamIngestor` drives a chunk source
(:class:`~repro.stream.chunks.CsvStreamSource` or
:class:`~repro.stream.chunks.NpzStreamSource`) through the resumable
radio layer (:class:`~repro.radio.streaming.StreamingAttribution`) and
folds every settled packet into per-user partial totals via
:class:`~repro.stream.accumulate.UserStreamAccumulator`. The finished
:class:`~repro.stream.accumulate.StreamResult` is a totals-tier
:class:`~repro.core.readout.EnergyReadout`: per-app, per-(app, state)
and per-state energy, byte volumes and idle floors **bit-identical** to
:class:`~repro.core.accounting.StudyEnergy` over the same data —
``array_equal``, not ``allclose`` — while peak memory stays
O(workers × chunk).

The accounting tiers live in sibling modules so the shard layer
(:mod:`repro.shard`) can reuse them without the driver:
:mod:`repro.stream.cadence` (incremental Table 1 cadence) and
:mod:`repro.stream.accumulate` (per-user partials + study readout).
Their public names are re-exported here for backward compatibility.

Periodic :class:`~repro.stream.checkpoint.StreamCheckpoint` snapshots
make the run killable: ``run(resume=True)`` reloads the carries and
partials and continues without recomputing a single settled packet.
When the ingestor runs as one shard of a sharded plan, ``shard_info``
stamps every snapshot with the shard header so a partial checkpoint can
never be mistaken for (or merged as) a whole-study one.

Parallelism: chunk rounds fan out over a persistent
:class:`~repro.parallel.TaskPool` — workers do the vector math
(:meth:`StreamingAttribution.feed`) and ship back settled arrays plus
the new carry; the parent performs *all* float accumulation itself,
sequentially, so results are identical for any worker count.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.core.periodicity import DEFAULT_BURST_GAP
from repro.core.readout import DEFAULT_FLOW_GAP
from repro.errors import ReproError, StreamError, TaskFailure
from repro.metrics import RunMetrics
from repro.parallel import TaskPool, resolve_workers
from repro.radio.attribution import TailPolicy
from repro.radio.base import RadioModel
from repro.radio.lte import LTE_DEFAULT
from repro.radio.streaming import RadioCarry, StreamingAttribution
from repro.stream.accumulate import (
    StreamResult,
    UserStreamAccumulator,
    UserStreamResult,
)
from repro.stream.cadence import CadenceTracker
from repro.stream.checkpoint import StreamCheckpoint
from repro.stream.chunks import StreamSource
from repro.trace.arrays import PacketArray

__all__ = [
    "CadenceTracker",
    "StreamChunkTask",
    "StreamIngestor",
    "StreamResult",
    "UserStreamAccumulator",
    "UserStreamResult",
]


class StreamChunkTask:
    """Picklable per-chunk radio step for :class:`~repro.parallel.TaskPool`.

    Unlike the batch :class:`~repro.radio.attribution.AttributionTask`,
    per-round data cannot live on the task (the pool ships the task
    once, at creation) — each item carries ``(user_id, window, carry
    payload, chunk records)`` and returns the settled arrays plus the
    advanced carry. No accumulation happens here, so any worker count
    yields identical results.
    """

    def __init__(self, model: RadioModel, policy: TailPolicy) -> None:
        self.model = model
        self.policy = policy

    def __call__(self, item):
        user_id, window, carry_payload, chunk_data = item
        carry = (
            RadioCarry.from_payload(carry_payload)
            if carry_payload is not None
            else None
        )
        sim = StreamingAttribution(self.model, self.policy, window, carry)
        settled = sim.feed(PacketArray(chunk_data))
        return (
            user_id,
            (settled.apps, settled.states, settled.sizes, settled.per_packet),
            sim.carry.to_payload(),
        )


class StreamIngestor:
    """Drive a chunk source to a batch-identical :class:`StreamResult`.

    Args:
        source: A :class:`~repro.stream.chunks.CsvStreamSource` or
            :class:`~repro.stream.chunks.NpzStreamSource`.
        model: Radio power model (default: the paper's LTE constants).
        policy: Tail-energy attribution rule.
        workers: Chunk rounds fan out over this many processes; also
            the number of users in flight at once, so peak memory is
            O(workers × chunk). ``1`` (default) stays in process.
        checkpoint_path: Where snapshots are written; required for
            ``checkpoint_every``, ``max_chunks`` and ``resume``.
        checkpoint_every: Snapshot after every N processed chunks
            (``0`` disables periodic snapshots).
        metrics: A shared :class:`~repro.metrics.RunMetrics`; a private
            one is created when omitted.
        retries: Retry a failed/crashed/timed-out chunk task this many
            times (exponential backoff) before giving up on it. Chunk
            tasks are pure, so a retried run stays bit-identical.
        task_timeout: Seconds to wait for one chunk task before
            declaring its worker hung and rebuilding the pool.
        quarantine: When a chunk task exhausts its retries, quarantine
            that *user* (drop them from the result, record the
            :class:`~repro.errors.TaskFailure` in
            :attr:`StreamResult.failures`) instead of aborting the run.
        cadence: Track background flow/burst cadence per user (at the
            paper's default gaps) so the streamed readout can render
            Table 1. Disable to shave the tracker's memory when only
            Figs 1-3 are needed.
        shard_info: When this ingestor runs one shard of a sharded
            plan, the shard header dict (``index``/``of``/``manifest``/
            ``parent_signature``) stamped into every checkpoint it
            writes. Whole-study runs leave it ``None``.
    """

    def __init__(
        self,
        source: StreamSource,
        model: RadioModel = LTE_DEFAULT,
        policy: TailPolicy = TailPolicy.LAST_PACKET,
        *,
        workers: Optional[int] = 1,
        checkpoint_path: Optional[Union[str, Path]] = None,
        checkpoint_every: int = 0,
        metrics: Optional[RunMetrics] = None,
        retries: int = 0,
        task_timeout: Optional[float] = None,
        quarantine: bool = False,
        cadence: bool = True,
        shard_info: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.source = source
        self.model = model
        self.policy = policy
        self.workers = resolve_workers(workers)
        self.checkpoint_path = (
            Path(checkpoint_path) if checkpoint_path is not None else None
        )
        self.checkpoint_every = int(checkpoint_every)
        self.metrics = metrics if metrics is not None else RunMetrics()
        self.retries = int(retries)
        self.task_timeout = task_timeout
        self.quarantine = bool(quarantine)
        self.cadence = bool(cadence)
        self.shard_info = dict(shard_info) if shard_info is not None else None
        if self.checkpoint_every and self.checkpoint_path is None:
            raise StreamError("checkpoint_every needs a checkpoint_path")

    def run(
        self,
        resume: bool = False,
        max_chunks: Optional[int] = None,
    ) -> Optional[StreamResult]:
        """Ingest every user; return the study totals.

        With ``resume=True`` the run continues from
        ``checkpoint_path`` — done users are never re-read, a
        mid-stream user seeks past its consumed rows and picks its
        radio carry back up mid-tail. ``max_chunks`` stops the run
        after that many chunks, writes a checkpoint and returns
        ``None`` (the bounded-slice / kill-simulation mode).

        On an aborting :class:`~repro.errors.ReproError` (a poison
        task out of retries, a malformed row without quarantine, a
        truncated archive member) the accumulators are still consistent
        at the last completed round, so when a ``checkpoint_path`` is
        set a final checkpoint is written before the error propagates —
        the failed run costs one chunk round, not the whole ingestion.
        """
        if max_chunks is not None and self.checkpoint_path is None:
            raise StreamError("max_chunks needs a checkpoint_path")
        accs = self._initial_accumulators(resume)
        order = self.source.user_ids
        active = [uid for uid in order if not accs[uid].done]
        failed: Dict[int, TaskFailure] = {}
        iterators = {}
        chunks_this_run = 0
        since_checkpoint = 0
        task = StreamChunkTask(self.model, self.policy)
        self.source.quarantine.flush_to(self.metrics)
        try:
            with TaskPool(
                task,
                self.workers,
                retries=self.retries,
                task_timeout=self.task_timeout,
                quarantine=self.quarantine,
                metrics=self.metrics,
            ) as pool:
                while active:
                    items = []
                    chunk_rows = []
                    exhausted = []
                    with self.metrics.stage("stream.read"):
                        for uid in list(active):
                            if len(items) >= self.workers:
                                break
                            iterator = iterators.get(uid)
                            if iterator is None:
                                iterator = self.source.iter_chunks(
                                    uid, skip=accs[uid].rows_consumed
                                )
                                iterators[uid] = iterator
                            chunk = next(iterator, None)
                            if chunk is None:
                                exhausted.append(uid)
                            else:
                                acc = accs[uid]
                                items.append(
                                    (uid, acc.window, acc.carry, chunk.data)
                                )
                                chunk_rows.append(len(chunk))
                    with self.metrics.stage("stream.attribute"):
                        for uid in exhausted:
                            accs[uid].finish(self.model, self.policy)
                            active.remove(uid)
                            self.metrics.count("stream.users")
                        if items:
                            results = pool.map(items)
                            for item, result, rows in zip(
                                items, results, chunk_rows
                            ):
                                uid = item[0]
                                if isinstance(result, TaskFailure):
                                    # This user's chunk is poison even
                                    # after retries: drop the user, keep
                                    # the run (their checkpointed state
                                    # stays "running" for a later fix +
                                    # resume).
                                    active.remove(uid)
                                    failed[uid] = result
                                    self.metrics.count(
                                        "faults.users_quarantined"
                                    )
                                    continue
                                _, settled, carry = result
                                accs[uid].adopt(settled, carry)
                                accs[uid].observe_chunk(
                                    PacketArray(item[3])
                                )
                                accs[uid].rows_consumed += rows
                                self.metrics.count("stream.chunks")
                                self.metrics.count("stream.packets", rows)
                            chunks_this_run += len(items)
                            since_checkpoint += len(items)
                    if (
                        max_chunks is not None
                        and chunks_this_run >= max_chunks
                    ):
                        if active:
                            self._save_checkpoint(accs, order)
                            return None
                        break
                    if (
                        self.checkpoint_every
                        and since_checkpoint >= self.checkpoint_every
                        and active
                    ):
                        self._save_checkpoint(accs, order)
                        since_checkpoint = 0
        except ReproError:
            if self.checkpoint_path is not None:
                self._save_checkpoint(accs, order)
            raise
        ok = [uid for uid in order if uid not in failed]
        result = StreamResult(
            [UserStreamResult(accs[uid]) for uid in ok],
            failures=failed,
            registry=self.source.registry,
            windows={uid: self.source.window(uid) for uid in ok},
            cadences=(
                {uid: accs[uid].cadence.summary() for uid in ok}
                if all(accs[uid].cadence is not None for uid in ok)
                else None
            ),
        )
        if self.checkpoint_path is not None:
            self._save_checkpoint(accs, order)
        return result

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def _initial_accumulators(
        self, resume: bool
    ) -> Dict[int, UserStreamAccumulator]:
        order = self.source.user_ids
        if not resume:
            return {
                uid: UserStreamAccumulator(
                    uid, self.source.window(uid), cadence=self.cadence
                )
                for uid in order
            }
        if self.checkpoint_path is None:
            raise StreamError("resume needs a checkpoint_path")
        checkpoint = StreamCheckpoint.load(self.checkpoint_path)
        if checkpoint.loaded_from_fallback:
            self.metrics.count("faults.checkpoint_fallback")
        checkpoint.verify(
            self.source.signature(), self.model, self.policy
        )
        if checkpoint.shard != self.shard_info:
            raise StreamError(
                "checkpoint shard header does not match this run: "
                f"checkpoint {checkpoint.shard!r}, run {self.shard_info!r}"
            )
        saved = {user.user_id: user for user in checkpoint.users}
        if set(saved) != set(order):
            raise StreamError(
                "checkpoint user set does not match the source"
            )
        return {
            uid: UserStreamAccumulator.from_checkpoint(
                saved[uid], self.source.window(uid)
            )
            for uid in order
        }

    def _save_checkpoint(
        self, accs: Dict[int, UserStreamAccumulator], order: List[int]
    ) -> None:
        with self.metrics.stage("stream.checkpoint"):
            checkpoint = StreamCheckpoint(
                self.source.signature(),
                self.model,
                self.policy,
                [accs[uid].to_checkpoint() for uid in order],
                registry_json=self.source.registry.to_json(),
                has_cadence=all(
                    accs[uid].cadence is not None for uid in order
                ),
                cadence_flow_gap=DEFAULT_FLOW_GAP,
                cadence_burst_gap=DEFAULT_BURST_GAP,
                shard=self.shard_info,
            )
            checkpoint.save(self.checkpoint_path)
            self.metrics.count("stream.checkpoints")
