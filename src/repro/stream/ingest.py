"""Streaming ingestion with incremental, batch-identical accounting.

:class:`StreamIngestor` drives a chunk source
(:class:`~repro.stream.chunks.CsvStreamSource` or
:class:`~repro.stream.chunks.NpzStreamSource`) through the resumable
radio layer (:class:`~repro.radio.streaming.StreamingAttribution`) and
folds every settled packet into per-user partial totals
(:class:`~repro.core.accounting.PartialTotals` — the carry-bincount
accumulator whose float additions replay the batch engine's exactly).
The finished :class:`StreamResult` therefore reports per-app,
per-(app, state) and per-state energy, byte volumes and idle floors
**bit-identical** to :class:`~repro.core.accounting.StudyEnergy` over
the same data — ``array_equal``, not ``allclose`` — while peak memory
stays O(workers × chunk).

Periodic :class:`~repro.stream.checkpoint.StreamCheckpoint` snapshots
make the run killable: ``run(resume=True)`` reloads the carries and
partials and continues without recomputing a single settled packet.

Parallelism: chunk rounds fan out over a persistent
:class:`~repro.parallel.TaskPool` — workers do the vector math
(:meth:`StreamingAttribution.feed`) and ship back settled arrays plus
the new carry; the parent performs *all* float accumulation itself,
sequentially, so results are identical for any worker count.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.accounting import PartialTotals, merge_keyed_totals
from repro.errors import ReproError, StreamError, TaskFailure
from repro.metrics import RunMetrics
from repro.parallel import TaskPool, resolve_workers
from repro.radio.attribution import TailPolicy
from repro.radio.base import RadioModel
from repro.radio.lte import LTE_DEFAULT
from repro.radio.streaming import (
    FinalizedChunk,
    RadioCarry,
    StreamingAttribution,
)
from repro.stream.checkpoint import StreamCheckpoint, UserCheckpoint
from repro.stream.chunks import StreamSource
from repro.trace.arrays import PacketArray


class _IntTotals:
    """Exact per-key ``int64`` accumulator (byte volumes).

    Integer addition is associative, so unlike the float paths no
    ordering trick is needed — any chunking lands on the identical
    integers the batch :meth:`~repro.trace.index.TraceIndex.bytes_by_app`
    reduction computes.
    """

    def __init__(
        self,
        keys: Optional[np.ndarray] = None,
        values: Optional[np.ndarray] = None,
    ) -> None:
        self._keys = (
            np.empty(0, dtype=np.int64)
            if keys is None
            else np.asarray(keys, dtype=np.int64)
        )
        self._values = (
            np.empty(0, dtype=np.int64)
            if values is None
            else np.asarray(values, dtype=np.int64)
        )

    def add(self, keys: np.ndarray, amounts: np.ndarray) -> None:
        if len(keys) == 0:
            return
        all_keys = np.concatenate([self._keys, np.asarray(keys, np.int64)])
        all_amounts = np.concatenate(
            [self._values, np.asarray(amounts, np.int64)]
        )
        uniq, inverse = np.unique(all_keys, return_inverse=True)
        sums = np.zeros(len(uniq), dtype=np.int64)
        np.add.at(sums, inverse, all_amounts)
        self._keys = uniq
        self._values = sums

    def as_dict(self) -> Dict[int, int]:
        return {int(k): int(v) for k, v in zip(self._keys, self._values)}

    def payload(self) -> Tuple[np.ndarray, np.ndarray]:
        return self._keys.copy(), self._values.copy()


class UserStreamAccumulator:
    """One user's in-flight state: radio carry plus partial totals."""

    def __init__(self, user_id: int, window: Tuple[float, float]) -> None:
        self.user_id = user_id
        self.window = window
        self.carry: Optional[Dict[str, np.ndarray]] = None
        self.rows_consumed = 0
        self.done = False
        self.idle_energy = 0.0
        self.energy = PartialTotals()
        self.app_state = PartialTotals()
        self.bytes = _IntTotals()

    def adopt(
        self,
        settled: Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
        carry: Optional[Dict[str, np.ndarray]],
    ) -> None:
        """Fold one round's settled packets in; take the new carry."""
        apps, states, sizes, per_packet = settled
        self.energy.add(apps, per_packet)
        self.app_state.add(apps * 256 + states, per_packet)
        self.bytes.add(apps, sizes)
        if carry is not None:
            self.carry = carry

    def finish(self, model: RadioModel, policy: TailPolicy) -> None:
        """Settle the pending packet and the idle floor."""
        carry = (
            RadioCarry.from_payload(self.carry)
            if self.carry is not None
            else None
        )
        sim = StreamingAttribution(model, policy, self.window, carry)
        settled, idle = sim.finish()
        self.adopt(
            (settled.apps, settled.states, settled.sizes, settled.per_packet),
            None,
        )
        self.idle_energy = idle
        self.done = True

    # ------------------------------------------------------------------
    # Checkpoint round-trip
    # ------------------------------------------------------------------
    def to_checkpoint(self) -> UserCheckpoint:
        if self.done:
            status = "done"
        elif self.rows_consumed or self.carry is not None:
            status = "running"
        else:
            status = "pending"
        energy_keys, energy_values = self.energy.payload()
        state_keys, state_values = self.app_state.payload()
        bytes_keys, bytes_values = self.bytes.payload()
        return UserCheckpoint(
            user_id=self.user_id,
            status=status,
            rows_consumed=self.rows_consumed,
            carry=self.carry,
            energy_keys=energy_keys,
            energy_values=energy_values,
            state_keys=state_keys,
            state_values=state_values,
            bytes_keys=bytes_keys,
            bytes_values=bytes_values,
            idle_energy=self.idle_energy,
        )

    @classmethod
    def from_checkpoint(
        cls, saved: UserCheckpoint, window: Tuple[float, float]
    ) -> "UserStreamAccumulator":
        acc = cls(saved.user_id, window)
        acc.rows_consumed = saved.rows_consumed
        acc.carry = saved.carry
        acc.done = saved.status == "done"
        acc.idle_energy = saved.idle_energy
        acc.energy = PartialTotals(saved.energy_keys, saved.energy_values)
        acc.app_state = PartialTotals(saved.state_keys, saved.state_values)
        acc.bytes = _IntTotals(saved.bytes_keys, saved.bytes_values)
        return acc


class UserStreamResult:
    """One user's finished streaming totals (grouped views)."""

    def __init__(self, acc: UserStreamAccumulator) -> None:
        self.user_id = acc.user_id
        self.idle_energy = acc.idle_energy
        self._energy = acc.energy.as_dict()
        self._app_state = acc.app_state.as_dict()
        self._bytes = acc.bytes.as_dict()

    def energy_by_app(self) -> Dict[int, float]:
        """Joules per app id — batch ``AttributionResult`` order/values."""
        return dict(self._energy)

    def energy_by_app_state(self) -> Dict[Tuple[int, int], float]:
        """Joules per (app, process state) — keys decoded app*256+state."""
        return {(k // 256, k % 256): v for k, v in self._app_state.items()}

    def bytes_by_app(self) -> Dict[int, int]:
        """Traffic bytes per app id (exact integers)."""
        return dict(self._bytes)


class StreamResult:
    """Study-wide totals of one completed streaming ingestion.

    Every reduction here replays the exact fold
    :class:`~repro.core.accounting.StudyEnergy` performs — users in
    ingestion order through
    :func:`~repro.core.accounting.merge_keyed_totals`, idle via a
    sequential ``sum`` — so each is bit-identical to its batch
    counterpart. ``attributed_energy`` is the one exception: the batch
    scalar sums per-packet arrays whole, an association no stream can
    replay, so here it is defined as the fold of the (bit-identical)
    per-app totals.
    """

    def __init__(
        self,
        users: List[UserStreamResult],
        failures: Optional[Dict[int, TaskFailure]] = None,
    ) -> None:
        self.users = users
        self._by_id = {u.user_id: u for u in users}
        #: Quarantined users: ``{user_id: TaskFailure}``. Only populated
        #: when the ingestor ran with ``quarantine=True``; these users'
        #: partial totals are *excluded* from every reduction below.
        self.failures: Dict[int, TaskFailure] = dict(failures or {})

    @property
    def user_ids(self) -> List[int]:
        """User ids in ingestion order."""
        return [u.user_id for u in self.users]

    def user(self, user_id: int) -> UserStreamResult:
        """One user's totals."""
        try:
            return self._by_id[user_id]
        except KeyError:
            raise StreamError(f"unknown user id {user_id}") from None

    def energy_by_app(self) -> Dict[int, float]:
        """Joules per app id, summed over users."""
        return merge_keyed_totals(u.energy_by_app() for u in self.users)

    def energy_by_app_state(self) -> Dict[Tuple[int, int], float]:
        """Joules per (app id, process state), summed over users."""
        return merge_keyed_totals(
            u.energy_by_app_state() for u in self.users
        )

    def energy_by_state(self) -> Dict[int, float]:
        """Joules per process state, summed over apps and users."""
        return merge_keyed_totals(
            {state: joules}
            for (_, state), joules in self.energy_by_app_state().items()
        )

    def bytes_by_app(self) -> Dict[int, int]:
        """Traffic bytes per app id, summed over users."""
        return merge_keyed_totals(
            (u.bytes_by_app() for u in self.users), zero=0
        )

    @property
    def idle_energy(self) -> float:
        """Unattributed idle-floor energy over all users, joules."""
        return sum(u.idle_energy for u in self.users)

    @property
    def attributed_energy(self) -> float:
        """Energy attributed to apps (fold of the per-app totals)."""
        return sum(self.energy_by_app().values())

    @property
    def total_energy(self) -> float:
        """Attributed plus idle energy, joules."""
        return self.attributed_energy + self.idle_energy


class StreamChunkTask:
    """Picklable per-chunk radio step for :class:`~repro.parallel.TaskPool`.

    Unlike the batch :class:`~repro.radio.attribution.AttributionTask`,
    per-round data cannot live on the task (the pool ships the task
    once, at creation) — each item carries ``(user_id, window, carry
    payload, chunk records)`` and returns the settled arrays plus the
    advanced carry. No accumulation happens here, so any worker count
    yields identical results.
    """

    def __init__(self, model: RadioModel, policy: TailPolicy) -> None:
        self.model = model
        self.policy = policy

    def __call__(self, item):
        user_id, window, carry_payload, chunk_data = item
        carry = (
            RadioCarry.from_payload(carry_payload)
            if carry_payload is not None
            else None
        )
        sim = StreamingAttribution(self.model, self.policy, window, carry)
        settled = sim.feed(PacketArray(chunk_data))
        return (
            user_id,
            (settled.apps, settled.states, settled.sizes, settled.per_packet),
            sim.carry.to_payload(),
        )


class StreamIngestor:
    """Drive a chunk source to a batch-identical :class:`StreamResult`.

    Args:
        source: A :class:`~repro.stream.chunks.CsvStreamSource` or
            :class:`~repro.stream.chunks.NpzStreamSource`.
        model: Radio power model (default: the paper's LTE constants).
        policy: Tail-energy attribution rule.
        workers: Chunk rounds fan out over this many processes; also
            the number of users in flight at once, so peak memory is
            O(workers × chunk). ``1`` (default) stays in process.
        checkpoint_path: Where snapshots are written; required for
            ``checkpoint_every``, ``max_chunks`` and ``resume``.
        checkpoint_every: Snapshot after every N processed chunks
            (``0`` disables periodic snapshots).
        metrics: A shared :class:`~repro.metrics.RunMetrics`; a private
            one is created when omitted.
        retries: Retry a failed/crashed/timed-out chunk task this many
            times (exponential backoff) before giving up on it. Chunk
            tasks are pure, so a retried run stays bit-identical.
        task_timeout: Seconds to wait for one chunk task before
            declaring its worker hung and rebuilding the pool.
        quarantine: When a chunk task exhausts its retries, quarantine
            that *user* (drop them from the result, record the
            :class:`~repro.errors.TaskFailure` in
            :attr:`StreamResult.failures`) instead of aborting the run.
    """

    def __init__(
        self,
        source: StreamSource,
        model: RadioModel = LTE_DEFAULT,
        policy: TailPolicy = TailPolicy.LAST_PACKET,
        *,
        workers: Optional[int] = 1,
        checkpoint_path: Optional[Union[str, Path]] = None,
        checkpoint_every: int = 0,
        metrics: Optional[RunMetrics] = None,
        retries: int = 0,
        task_timeout: Optional[float] = None,
        quarantine: bool = False,
    ) -> None:
        self.source = source
        self.model = model
        self.policy = policy
        self.workers = resolve_workers(workers)
        self.checkpoint_path = (
            Path(checkpoint_path) if checkpoint_path is not None else None
        )
        self.checkpoint_every = int(checkpoint_every)
        self.metrics = metrics if metrics is not None else RunMetrics()
        self.retries = int(retries)
        self.task_timeout = task_timeout
        self.quarantine = bool(quarantine)
        if self.checkpoint_every and self.checkpoint_path is None:
            raise StreamError("checkpoint_every needs a checkpoint_path")

    def run(
        self,
        resume: bool = False,
        max_chunks: Optional[int] = None,
    ) -> Optional[StreamResult]:
        """Ingest every user; return the study totals.

        With ``resume=True`` the run continues from
        ``checkpoint_path`` — done users are never re-read, a
        mid-stream user seeks past its consumed rows and picks its
        radio carry back up mid-tail. ``max_chunks`` stops the run
        after that many chunks, writes a checkpoint and returns
        ``None`` (the bounded-slice / kill-simulation mode).

        On an aborting :class:`~repro.errors.ReproError` (a poison
        task out of retries, a malformed row without quarantine, a
        truncated archive member) the accumulators are still consistent
        at the last completed round, so when a ``checkpoint_path`` is
        set a final checkpoint is written before the error propagates —
        the failed run costs one chunk round, not the whole ingestion.
        """
        if max_chunks is not None and self.checkpoint_path is None:
            raise StreamError("max_chunks needs a checkpoint_path")
        accs = self._initial_accumulators(resume)
        order = self.source.user_ids
        active = [uid for uid in order if not accs[uid].done]
        failed: Dict[int, TaskFailure] = {}
        iterators = {}
        chunks_this_run = 0
        since_checkpoint = 0
        task = StreamChunkTask(self.model, self.policy)
        self.source.quarantine.flush_to(self.metrics)
        try:
            with TaskPool(
                task,
                self.workers,
                retries=self.retries,
                task_timeout=self.task_timeout,
                quarantine=self.quarantine,
                metrics=self.metrics,
            ) as pool:
                while active:
                    items = []
                    chunk_rows = []
                    exhausted = []
                    with self.metrics.stage("stream.read"):
                        for uid in list(active):
                            if len(items) >= self.workers:
                                break
                            iterator = iterators.get(uid)
                            if iterator is None:
                                iterator = self.source.iter_chunks(
                                    uid, skip=accs[uid].rows_consumed
                                )
                                iterators[uid] = iterator
                            chunk = next(iterator, None)
                            if chunk is None:
                                exhausted.append(uid)
                            else:
                                acc = accs[uid]
                                items.append(
                                    (uid, acc.window, acc.carry, chunk.data)
                                )
                                chunk_rows.append(len(chunk))
                    with self.metrics.stage("stream.attribute"):
                        for uid in exhausted:
                            accs[uid].finish(self.model, self.policy)
                            active.remove(uid)
                            self.metrics.count("stream.users")
                        if items:
                            results = pool.map(items)
                            for item, result, rows in zip(
                                items, results, chunk_rows
                            ):
                                uid = item[0]
                                if isinstance(result, TaskFailure):
                                    # This user's chunk is poison even
                                    # after retries: drop the user, keep
                                    # the run (their checkpointed state
                                    # stays "running" for a later fix +
                                    # resume).
                                    active.remove(uid)
                                    failed[uid] = result
                                    self.metrics.count(
                                        "faults.users_quarantined"
                                    )
                                    continue
                                _, settled, carry = result
                                accs[uid].adopt(settled, carry)
                                accs[uid].rows_consumed += rows
                                self.metrics.count("stream.chunks")
                                self.metrics.count("stream.packets", rows)
                            chunks_this_run += len(items)
                            since_checkpoint += len(items)
                    if (
                        max_chunks is not None
                        and chunks_this_run >= max_chunks
                    ):
                        if active:
                            self._save_checkpoint(accs, order)
                            return None
                        break
                    if (
                        self.checkpoint_every
                        and since_checkpoint >= self.checkpoint_every
                        and active
                    ):
                        self._save_checkpoint(accs, order)
                        since_checkpoint = 0
        except ReproError:
            if self.checkpoint_path is not None:
                self._save_checkpoint(accs, order)
            raise
        result = StreamResult(
            [
                UserStreamResult(accs[uid])
                for uid in order
                if uid not in failed
            ],
            failures=failed,
        )
        if self.checkpoint_path is not None:
            self._save_checkpoint(accs, order)
        return result

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def _initial_accumulators(
        self, resume: bool
    ) -> Dict[int, UserStreamAccumulator]:
        order = self.source.user_ids
        if not resume:
            return {
                uid: UserStreamAccumulator(uid, self.source.window(uid))
                for uid in order
            }
        if self.checkpoint_path is None:
            raise StreamError("resume needs a checkpoint_path")
        checkpoint = StreamCheckpoint.load(self.checkpoint_path)
        if checkpoint.loaded_from_fallback:
            self.metrics.count("faults.checkpoint_fallback")
        checkpoint.verify(
            self.source.signature(), self.model, self.policy
        )
        saved = {user.user_id: user for user in checkpoint.users}
        if set(saved) != set(order):
            raise StreamError(
                "checkpoint user set does not match the source"
            )
        return {
            uid: UserStreamAccumulator.from_checkpoint(
                saved[uid], self.source.window(uid)
            )
            for uid in order
        }

    def _save_checkpoint(
        self, accs: Dict[int, UserStreamAccumulator], order: List[int]
    ) -> None:
        with self.metrics.stage("stream.checkpoint"):
            checkpoint = StreamCheckpoint(
                self.source.signature(),
                self.model,
                self.policy,
                [accs[uid].to_checkpoint() for uid in order],
            )
            checkpoint.save(self.checkpoint_path)
            self.metrics.count("stream.checkpoints")
