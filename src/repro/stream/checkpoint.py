"""Durable snapshots of an in-flight streaming ingestion.

A :class:`StreamCheckpoint` captures everything
:class:`repro.stream.StreamIngestor` needs to continue after a kill
with *no recomputation*: per user, the packets consumed so far, the
resumable radio state (:class:`~repro.radio.streaming.RadioCarry` — the
pending tail owner and idle accumulators) and the partial per-app /
per-(app, state) / bytes totals, plus the finished users' idle floors.
Float state crosses the file as raw ``float64`` arrays, never text, so
a resumed run performs bit-identical arithmetic.

The file is one ``.npz`` with a JSON header member (the idiom of
:meth:`repro.trace.dataset.Dataset.save`), written atomically
(tmp + rename, the idiom of
:class:`repro.core.cache.AttributionCache.store`). The header binds the
checkpoint to its source (:meth:`CsvStreamSource.signature`), model and
policy; loading against anything else raises
:class:`~repro.errors.StreamError` rather than silently mixing runs.

Torn writes are the failure rename alone cannot cover (a power cut can
leave a short but well-formed-looking file, and a checkpoint that loads
*wrong* is worse than one that fails). Two defences: every save embeds
a content checksum over all members, verified on load; and each save
rotates the previous good file to ``<name>.prev``, which :meth:`load`
falls back to when the current file fails verification
(``loaded_from_fallback`` tells the caller it happened).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro import faults
from repro.core.periodicity import DEFAULT_BURST_GAP
from repro.core.readout import DEFAULT_FLOW_GAP
from repro.errors import StreamError
from repro.radio.attribution import TailPolicy
from repro.radio.base import RadioModel

PathLike = Union[str, Path]

#: On-disk layout version. Format 2 added the app registry, per-user
#: observation windows, cadence members, and rekeyed the byte totals
#: from per-app to per-(app, state) — a format-1 file's ``bytes_keys``
#: mean something else entirely, so older files are refused rather
#: than misread.
CHECKPOINT_FORMAT = 2

#: The cadence tracker's fixed payload member names.
CADENCE_MEMBERS = (
    "flow_keys",
    "flow_last",
    "flow_count_apps",
    "flow_counts",
    "burst_apps",
    "burst_counts",
    "burst_last_ts",
    "burst_last_start",
    "interval_offsets",
    "intervals",
)


def previous_path(path: PathLike) -> Path:
    """Where :meth:`StreamCheckpoint.save` rotates the prior good file."""
    path = Path(path)
    return path.with_name(path.name + ".prev")


def _content_digest(arrays: Dict[str, np.ndarray]) -> str:
    """Checksum over every member's name, dtype, shape and bytes."""
    digest = hashlib.blake2b(digest_size=16)
    for name in sorted(arrays):
        arr = np.asarray(arrays[name])
        digest.update(name.encode("utf-8"))
        digest.update(str(arr.dtype).encode("utf-8"))
        digest.update(str(arr.shape).encode("utf-8"))
        digest.update(np.ascontiguousarray(arr).tobytes())
    return digest.hexdigest()


@dataclass
class UserCheckpoint:
    """One user's resumable state inside a checkpoint."""

    user_id: int
    #: ``pending`` (untouched), ``running`` (mid-stream) or ``done``.
    status: str
    #: Packets already consumed — the resume seek offset.
    rows_consumed: int = 0
    #: Radio carry payload (``running`` users only).
    carry: Optional[Dict[str, np.ndarray]] = None
    #: Partial per-app energy (keys, values) arrays.
    energy_keys: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    energy_values: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.float64)
    )
    #: Partial per-(app, state) energy, keys combined as app*256+state.
    state_keys: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    state_values: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.float64)
    )
    #: Partial per-(app, state) byte totals, keys combined as
    #: app*256+state (exact int64).
    bytes_keys: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    bytes_values: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    #: Unattributed idle energy (``done`` users only).
    idle_energy: float = 0.0
    #: Observation window (start, end) seconds.
    window: Optional[Tuple[float, float]] = None
    #: Cadence tracker payload (:data:`CADENCE_MEMBERS` arrays), when
    #: the run tracked flow/burst cadence.
    cadence: Optional[Dict[str, np.ndarray]] = None


class StreamCheckpoint:
    """Snapshot of a streaming run, bound to (source, model, policy)."""

    #: Set by :meth:`load`: True when the current file failed checksum
    #: verification and this object came from the ``.prev`` rotation.
    loaded_from_fallback: bool = False

    def __init__(
        self,
        signature: str,
        model: RadioModel,
        policy: TailPolicy,
        users: List[UserCheckpoint],
        chunks_done: int = 0,
        *,
        registry_json: Optional[str] = None,
        has_cadence: bool = False,
        cadence_flow_gap: float = DEFAULT_FLOW_GAP,
        cadence_burst_gap: float = DEFAULT_BURST_GAP,
        shard: Optional[Dict[str, Any]] = None,
        extra_json: Optional[str] = None,
        extra_arrays: Optional[Dict[str, np.ndarray]] = None,
    ) -> None:
        self.signature = signature
        self.model_repr = repr(model)
        self.policy_value = policy.value
        self.users = users
        self.chunks_done = int(chunks_done)
        #: The study's :class:`~repro.trace.dataset.AppRegistry` as
        #: JSON — what makes a finished checkpoint analysable on its
        #: own (``repro figure --from-checkpoint``).
        self.registry_json = registry_json
        self.has_cadence = bool(has_cadence)
        self.cadence_flow_gap = float(cadence_flow_gap)
        self.cadence_burst_gap = float(cadence_burst_gap)
        #: Shard header when this checkpoint covers one shard of a
        #: sharded plan (``index``/``of``/``manifest``/
        #: ``parent_signature``, see :mod:`repro.shard`); ``None`` for
        #: a whole-study checkpoint. Readout construction refuses shard
        #: checkpoints — merge them first (``repro shard merge``).
        self.shard = dict(shard) if shard is not None else None
        #: Subsystem-private extension state riding on the format-2
        #: machinery: a JSON string in the header plus named arrays
        #: stored as ``x_``-prefixed members (a namespace no core
        #: member uses). ``repro follow`` keeps its window rings and
        #: tail cursors here; readers that do not know the extras
        #: simply never look at them, and the content checksum covers
        #: them like everything else.
        self.extra_json = extra_json
        self.extra_arrays = dict(extra_arrays) if extra_arrays else {}

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: PathLike) -> Path:
        """Write the checkpoint atomically (tmp + rename)."""
        path = Path(path)
        arrays: Dict[str, np.ndarray] = {}
        header = {
            "format": CHECKPOINT_FORMAT,
            "signature": self.signature,
            "model": self.model_repr,
            "policy": self.policy_value,
            "chunks_done": self.chunks_done,
            "registry": self.registry_json,
            "has_cadence": self.has_cadence,
            "flow_gap": self.cadence_flow_gap,
            "burst_gap": self.cadence_burst_gap,
            "shard": self.shard,
            "extra": self.extra_json,
            "users": [],
        }
        for name, value in self.extra_arrays.items():
            arrays[f"x_{name}"] = np.asarray(value)
        for user in self.users:
            uid = user.user_id
            header["users"].append(
                {
                    "user_id": uid,
                    "status": user.status,
                    "rows_consumed": user.rows_consumed,
                    "has_carry": user.carry is not None,
                    "window": (
                        [float(user.window[0]), float(user.window[1])]
                        if user.window is not None
                        else None
                    ),
                    "has_cadence": user.cadence is not None,
                }
            )
            arrays[f"energy_keys_{uid}"] = user.energy_keys
            arrays[f"energy_values_{uid}"] = user.energy_values
            arrays[f"state_keys_{uid}"] = user.state_keys
            arrays[f"state_values_{uid}"] = user.state_values
            arrays[f"bytes_keys_{uid}"] = user.bytes_keys
            arrays[f"bytes_values_{uid}"] = user.bytes_values
            arrays[f"idle_{uid}"] = np.float64(user.idle_energy)
            if user.carry is not None:
                for name, value in user.carry.items():
                    arrays[f"carry_{name}_{uid}"] = value
            if user.cadence is not None:
                for name in CADENCE_MEMBERS:
                    arrays[f"cad_{name}_{uid}"] = user.cadence[name]
        arrays["header"] = np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8
        )
        arrays["checksum"] = np.frombuffer(
            _content_digest(arrays).encode("ascii"), dtype=np.uint8
        )
        tmp = path.with_suffix(".tmp.npz")
        np.savez(tmp, **arrays)
        faults.fire("checkpoint.save", path=tmp)
        if path.exists():
            # Keep one known-good generation: if the rename below lands
            # a torn file, load() falls back to this one.
            os.replace(path, previous_path(path))
        tmp.replace(path)
        return path

    @classmethod
    def load(cls, path: PathLike, fallback: bool = True) -> "StreamCheckpoint":
        """Read a checkpoint written by :meth:`save`.

        A file that fails to parse or whose content checksum does not
        match raises :class:`~repro.errors.StreamError` — never a
        silently wrong checkpoint. With ``fallback=True`` (default) a
        torn — or missing, as after a crash between :meth:`save`'s two
        renames — current file falls back to the ``.prev`` rotation
        when one exists; the returned object then has
        ``loaded_from_fallback`` set so callers can count the event.
        """
        path = Path(path)
        if not path.exists():
            prev = previous_path(path)
            if fallback and prev.exists():
                # A crash between save()'s rotation and its final
                # rename leaves only the rotated generation; losing the
                # run over that would defeat the rotation's purpose.
                checkpoint = cls._load_verified(prev)
                checkpoint.loaded_from_fallback = True
                return checkpoint
            raise StreamError(f"no checkpoint at {path}")
        try:
            checkpoint = cls._load_verified(path)
        except StreamError:
            prev = previous_path(path)
            if not (fallback and prev.exists()):
                raise
            checkpoint = cls._load_verified(prev)
            checkpoint.loaded_from_fallback = True
        return checkpoint

    @classmethod
    def _load_verified(cls, path: Path) -> "StreamCheckpoint":
        """Parse + checksum-verify one file; any defect → StreamError."""
        try:
            with np.load(path) as archive:
                members = {name: archive[name] for name in archive.files}
            stored = members.pop("checksum", None)
            if stored is None:
                raise StreamError(
                    f"checkpoint {path} has no content checksum"
                )
            if bytes(stored).decode("ascii") != _content_digest(members):
                raise StreamError(
                    f"checkpoint {path} failed checksum verification "
                    "(torn or corrupt write)"
                )
            header = json.loads(bytes(members["header"]).decode("utf-8"))
            fmt = int(header.get("format", 1))
            if fmt != CHECKPOINT_FORMAT:
                raise StreamError(
                    f"checkpoint {path} is format {fmt}; this version "
                    f"reads format {CHECKPOINT_FORMAT} (byte totals were "
                    "rekeyed per (app, state)) — re-run `repro ingest` "
                    "to regenerate it"
                )
            users = []
            for entry in header["users"]:
                uid = int(entry["user_id"])
                carry = None
                if entry["has_carry"]:
                    carry = {
                        "floats": members[f"carry_floats_{uid}"],
                        "ints": members[f"carry_ints_{uid}"],
                        "idle_buffer": members[f"carry_idle_buffer_{uid}"],
                    }
                window = entry.get("window")
                cadence = None
                if entry.get("has_cadence"):
                    cadence = {
                        name: members[f"cad_{name}_{uid}"]
                        for name in CADENCE_MEMBERS
                    }
                users.append(
                    UserCheckpoint(
                        user_id=uid,
                        status=str(entry["status"]),
                        rows_consumed=int(entry["rows_consumed"]),
                        carry=carry,
                        energy_keys=members[f"energy_keys_{uid}"],
                        energy_values=members[f"energy_values_{uid}"],
                        state_keys=members[f"state_keys_{uid}"],
                        state_values=members[f"state_values_{uid}"],
                        bytes_keys=members[f"bytes_keys_{uid}"],
                        bytes_values=members[f"bytes_values_{uid}"],
                        idle_energy=float(members[f"idle_{uid}"]),
                        window=(
                            (float(window[0]), float(window[1]))
                            if window is not None
                            else None
                        ),
                        cadence=cadence,
                    )
                )
        except StreamError:
            raise
        except Exception as exc:
            # A torn zip fails in whatever layer the cut lands on
            # (zipfile, zlib, the npy header parser, json, a missing
            # member); all of them mean the same one thing here.
            raise StreamError(
                f"torn or corrupt checkpoint at {path}: {exc!r}"
            ) from exc
        checkpoint = cls.__new__(cls)
        checkpoint.signature = header["signature"]
        checkpoint.model_repr = header["model"]
        checkpoint.policy_value = header["policy"]
        checkpoint.users = users
        checkpoint.chunks_done = int(header["chunks_done"])
        checkpoint.registry_json = header.get("registry")
        checkpoint.has_cadence = bool(header.get("has_cadence", False))
        checkpoint.cadence_flow_gap = float(
            header.get("flow_gap", DEFAULT_FLOW_GAP)
        )
        checkpoint.cadence_burst_gap = float(
            header.get("burst_gap", DEFAULT_BURST_GAP)
        )
        checkpoint.shard = header.get("shard")
        checkpoint.extra_json = header.get("extra")
        checkpoint.extra_arrays = {
            name[2:]: value
            for name, value in members.items()
            if name.startswith("x_")
        }
        checkpoint.loaded_from_fallback = False
        return checkpoint

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def verify(
        self, signature: str, model: RadioModel, policy: TailPolicy
    ) -> None:
        """Refuse to resume against a different source, model or policy."""
        if self.signature != signature:
            raise StreamError(
                "checkpoint was written for a different source "
                f"(checkpoint {self.signature}, source {signature})"
            )
        if self.model_repr != repr(model):
            raise StreamError(
                "checkpoint was written under a different radio model"
            )
        if self.policy_value != policy.value:
            raise StreamError(
                f"checkpoint was written under policy "
                f"{self.policy_value!r}, run requested {policy.value!r}"
            )
