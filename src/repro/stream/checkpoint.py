"""Durable snapshots of an in-flight streaming ingestion.

A :class:`StreamCheckpoint` captures everything
:class:`repro.stream.StreamIngestor` needs to continue after a kill
with *no recomputation*: per user, the packets consumed so far, the
resumable radio state (:class:`~repro.radio.streaming.RadioCarry` — the
pending tail owner and idle accumulators) and the partial per-app /
per-(app, state) / bytes totals, plus the finished users' idle floors.
Float state crosses the file as raw ``float64`` arrays, never text, so
a resumed run performs bit-identical arithmetic.

The file is one ``.npz`` with a JSON header member (the idiom of
:meth:`repro.trace.dataset.Dataset.save`), written atomically
(tmp + rename, the idiom of
:class:`repro.core.cache.AttributionCache.store`). The header binds the
checkpoint to its source (:meth:`CsvStreamSource.signature`), model and
policy; loading against anything else raises
:class:`~repro.errors.StreamError` rather than silently mixing runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.errors import StreamError
from repro.radio.attribution import TailPolicy
from repro.radio.base import RadioModel

PathLike = Union[str, Path]


@dataclass
class UserCheckpoint:
    """One user's resumable state inside a checkpoint."""

    user_id: int
    #: ``pending`` (untouched), ``running`` (mid-stream) or ``done``.
    status: str
    #: Packets already consumed — the resume seek offset.
    rows_consumed: int = 0
    #: Radio carry payload (``running`` users only).
    carry: Optional[Dict[str, np.ndarray]] = None
    #: Partial per-app energy (keys, values) arrays.
    energy_keys: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    energy_values: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.float64)
    )
    #: Partial per-(app, state) energy, keys combined as app*256+state.
    state_keys: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    state_values: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.float64)
    )
    #: Partial per-app byte totals (exact int64).
    bytes_keys: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    bytes_values: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    #: Unattributed idle energy (``done`` users only).
    idle_energy: float = 0.0


class StreamCheckpoint:
    """Snapshot of a streaming run, bound to (source, model, policy)."""

    def __init__(
        self,
        signature: str,
        model: RadioModel,
        policy: TailPolicy,
        users: List[UserCheckpoint],
        chunks_done: int = 0,
    ) -> None:
        self.signature = signature
        self.model_repr = repr(model)
        self.policy_value = policy.value
        self.users = users
        self.chunks_done = int(chunks_done)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: PathLike) -> Path:
        """Write the checkpoint atomically (tmp + rename)."""
        path = Path(path)
        arrays: Dict[str, np.ndarray] = {}
        header = {
            "signature": self.signature,
            "model": self.model_repr,
            "policy": self.policy_value,
            "chunks_done": self.chunks_done,
            "users": [],
        }
        for user in self.users:
            uid = user.user_id
            header["users"].append(
                {
                    "user_id": uid,
                    "status": user.status,
                    "rows_consumed": user.rows_consumed,
                    "has_carry": user.carry is not None,
                }
            )
            arrays[f"energy_keys_{uid}"] = user.energy_keys
            arrays[f"energy_values_{uid}"] = user.energy_values
            arrays[f"state_keys_{uid}"] = user.state_keys
            arrays[f"state_values_{uid}"] = user.state_values
            arrays[f"bytes_keys_{uid}"] = user.bytes_keys
            arrays[f"bytes_values_{uid}"] = user.bytes_values
            arrays[f"idle_{uid}"] = np.float64(user.idle_energy)
            if user.carry is not None:
                for name, value in user.carry.items():
                    arrays[f"carry_{name}_{uid}"] = value
        arrays["header"] = np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8
        )
        tmp = path.with_suffix(".tmp.npz")
        np.savez(tmp, **arrays)
        tmp.replace(path)
        return path

    @classmethod
    def load(cls, path: PathLike) -> "StreamCheckpoint":
        """Read a checkpoint written by :meth:`save`."""
        path = Path(path)
        if not path.exists():
            raise StreamError(f"no checkpoint at {path}")
        with np.load(path) as archive:
            header = json.loads(bytes(archive["header"]).decode("utf-8"))
            users = []
            for entry in header["users"]:
                uid = int(entry["user_id"])
                carry = None
                if entry["has_carry"]:
                    carry = {
                        "floats": archive[f"carry_floats_{uid}"],
                        "ints": archive[f"carry_ints_{uid}"],
                        "idle_buffer": archive[f"carry_idle_buffer_{uid}"],
                    }
                users.append(
                    UserCheckpoint(
                        user_id=uid,
                        status=str(entry["status"]),
                        rows_consumed=int(entry["rows_consumed"]),
                        carry=carry,
                        energy_keys=archive[f"energy_keys_{uid}"],
                        energy_values=archive[f"energy_values_{uid}"],
                        state_keys=archive[f"state_keys_{uid}"],
                        state_values=archive[f"state_values_{uid}"],
                        bytes_keys=archive[f"bytes_keys_{uid}"],
                        bytes_values=archive[f"bytes_values_{uid}"],
                        idle_energy=float(archive[f"idle_{uid}"]),
                    )
                )
        checkpoint = cls.__new__(cls)
        checkpoint.signature = header["signature"]
        checkpoint.model_repr = header["model"]
        checkpoint.policy_value = header["policy"]
        checkpoint.users = users
        checkpoint.chunks_done = int(header["chunks_done"])
        return checkpoint

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def verify(
        self, signature: str, model: RadioModel, policy: TailPolicy
    ) -> None:
        """Refuse to resume against a different source, model or policy."""
        if self.signature != signature:
            raise StreamError(
                "checkpoint was written for a different source "
                f"(checkpoint {self.signature}, source {signature})"
            )
        if self.model_repr != repr(model):
            raise StreamError(
                "checkpoint was written under a different radio model"
            )
        if self.policy_value != policy.value:
            raise StreamError(
                f"checkpoint was written under policy "
                f"{self.policy_value!r}, run requested {policy.value!r}"
            )
