"""Bounded-memory streaming ingestion with checkpoint/resume.

The batch pipeline loads a whole :class:`~repro.trace.dataset.Dataset`
before anything runs; this package consumes the same inputs — the
``io_text`` CSV schemas or a saved ``.npz`` archive — in time-ordered,
bounded-size chunks and maintains an *incremental* per-user energy
accounting whose results are bit-identical to
:class:`~repro.core.accounting.StudyEnergy` (``array_equal``, never
``allclose``). Radio state and the pending tail owner cross chunk
boundaries inside a :class:`~repro.radio.streaming.RadioCarry`; the
carry plus all partial totals persist in a :class:`StreamCheckpoint`,
so a killed run resumes with no recomputation.

Typical use::

    from repro.stream import NpzStreamSource, StreamIngestor

    source = NpzStreamSource("study.npz", chunk_size=65536)
    ingestor = StreamIngestor(source, checkpoint_path="run.ckpt.npz")
    result = ingestor.run()            # or run(resume=True) after a kill
    print(result.energy_by_app())

The same surface is exposed on the command line as ``repro ingest``.
"""

from repro.stream.accumulate import (
    StreamResult,
    UserStreamAccumulator,
    UserStreamResult,
)
from repro.stream.cadence import CadenceTracker
from repro.stream.checkpoint import StreamCheckpoint, UserCheckpoint
from repro.stream.chunks import (
    DEFAULT_CHUNK_SIZE,
    CsvStreamSource,
    NpzStreamSource,
    RowQuarantine,
)
from repro.stream.ingest import StreamChunkTask, StreamIngestor

__all__ = [
    "CadenceTracker",
    "CsvStreamSource",
    "DEFAULT_CHUNK_SIZE",
    "NpzStreamSource",
    "RowQuarantine",
    "StreamChunkTask",
    "StreamCheckpoint",
    "StreamIngestor",
    "StreamResult",
    "UserCheckpoint",
    "UserStreamAccumulator",
    "UserStreamResult",
]
