"""Incremental background flow/burst cadence tracking.

Table 1 needs more than keyed totals: per-app background flow counts
and inter-burst intervals. :class:`CadenceTracker` accumulates both
chunk by chunk at the paper's default gaps while the packets go by, so
a streamed (or sharded) ingest still renders a byte-identical Table 1
without ever holding a whole trace. Split out of ``stream.ingest`` so
the shard executors (:mod:`repro.shard`) can reuse it without pulling
in the driver.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.core.periodicity import DEFAULT_BURST_GAP
from repro.core.readout import DEFAULT_FLOW_GAP
from repro.trace.arrays import PacketArray
from repro.trace.events import state_background_mask


class CadenceTracker:
    """Incremental background flow/burst cadence for one user.

    Tracks, chunk by chunk, exactly what the batch
    :meth:`~repro.core.accounting.StudyEnergy.background_cadence`
    computes from the full arrays: per-app background flow counts (an
    ``(app, conn)`` pair starts a new flow after ``flow_gap`` of
    silence — the strict ``>`` rule of
    :func:`~repro.trace.flow.reconstruct_flows`) and per-app burst
    starts plus inter-burst intervals (the strict ``>`` rule of
    :func:`~repro.core.periodicity.burst_starts`). Counts are integers,
    so chunking-exact; intervals are differences of the same ``float64``
    timestamps the batch path subtracts, so the pooled arrays are
    bit-identical too. The carried last-timestamps make every
    chunk-boundary gap the identical subtraction the whole-trace
    ``np.diff`` performs.
    """

    def __init__(
        self,
        flow_gap: float = DEFAULT_FLOW_GAP,
        burst_gap: float = DEFAULT_BURST_GAP,
    ) -> None:
        self.flow_gap = float(flow_gap)
        self.burst_gap = float(burst_gap)
        #: ``(app << 32) | conn`` -> last background packet timestamp.
        self._flow_last: Dict[int, float] = {}
        #: app -> background flows opened so far.
        self._flow_counts: Dict[int, int] = {}
        #: app -> last background packet timestamp (burst clustering).
        self._burst_last_ts: Dict[int, float] = {}
        #: app -> start time of the latest burst.
        self._burst_last_start: Dict[int, float] = {}
        #: app -> bursts counted so far.
        self._burst_counts: Dict[int, int] = {}
        #: app -> chronological list of inter-burst interval arrays.
        self._intervals: Dict[int, List[np.ndarray]] = {}

    def observe(self, packets: PacketArray) -> None:
        """Fold one raw (time-sorted) chunk into the cadence state."""
        if len(packets) == 0:
            return
        mask = state_background_mask(packets.states)
        if not mask.any():
            return
        ts = packets.timestamps[mask]
        apps = packets.apps.astype(np.int64)[mask]
        conns = packets.conns.astype(np.int64)[mask]
        self._observe_bursts(apps, ts)
        self._observe_flows(apps, conns, ts)

    def _observe_bursts(self, apps: np.ndarray, ts: np.ndarray) -> None:
        order = np.argsort(apps, kind="stable")
        s_apps = apps[order]
        s_ts = ts[order]
        group_starts = np.flatnonzero(
            np.concatenate([[True], s_apps[1:] != s_apps[:-1]])
        )
        bounds = np.append(group_starts, len(s_apps))
        for i, lo in enumerate(group_starts):
            app = int(s_apps[lo])
            t = s_ts[lo : bounds[i + 1]]
            last_ts = self._burst_last_ts.get(app)
            if last_ts is None:
                is_start = np.concatenate(
                    [[True], np.diff(t) > self.burst_gap]
                )
            else:
                prev = np.concatenate([[last_ts], t[:-1]])
                is_start = (t - prev) > self.burst_gap
            starts = t[is_start]
            if len(starts):
                last_start = self._burst_last_start.get(app)
                seq = (
                    starts
                    if last_start is None
                    else np.concatenate([[last_start], starts])
                )
                intervals = np.diff(seq)
                if len(intervals):
                    self._intervals.setdefault(app, []).append(intervals)
                self._burst_counts[app] = self._burst_counts.get(
                    app, 0
                ) + len(starts)
                self._burst_last_start[app] = float(starts[-1])
            self._burst_last_ts[app] = float(t[-1])

    def _observe_flows(
        self, apps: np.ndarray, conns: np.ndarray, ts: np.ndarray
    ) -> None:
        order = np.lexsort((conns, apps))
        s_apps = apps[order]
        s_conns = conns[order]
        s_ts = ts[order]
        group_starts = np.flatnonzero(
            np.concatenate(
                [
                    [True],
                    (s_apps[1:] != s_apps[:-1])
                    | (s_conns[1:] != s_conns[:-1]),
                ]
            )
        )
        bounds = np.append(group_starts, len(s_apps))
        for i, lo in enumerate(group_starts):
            app = int(s_apps[lo])
            key = (app << 32) | int(s_conns[lo])
            t = s_ts[lo : bounds[i + 1]]
            new_flows = int(np.count_nonzero(np.diff(t) > self.flow_gap))
            last = self._flow_last.get(key)
            if last is None or (t[0] - last) > self.flow_gap:
                new_flows += 1
            if new_flows:
                self._flow_counts[app] = (
                    self._flow_counts.get(app, 0) + new_flows
                )
            self._flow_last[key] = float(t[-1])

    def summary(self) -> Dict[int, Tuple[int, int, np.ndarray]]:
        """app -> (n_flows, n_bursts, intervals), for the readout."""
        out: Dict[int, Tuple[int, int, np.ndarray]] = {}
        for app in sorted(self._burst_last_ts):
            parts = self._intervals.get(app)
            intervals = (
                np.concatenate(parts) if parts else np.empty(0, np.float64)
            )
            out[app] = (
                self._flow_counts.get(app, 0),
                self._burst_counts.get(app, 0),
                intervals,
            )
        return out

    # ------------------------------------------------------------------
    # Checkpoint round-trip
    # ------------------------------------------------------------------
    def payload(self) -> Dict[str, np.ndarray]:
        """Fixed-name array members (checkpoint serialisation)."""
        flow_keys = np.array(sorted(self._flow_last), dtype=np.int64)
        burst_apps = np.array(sorted(self._burst_last_ts), dtype=np.int64)
        flow_count_apps = np.array(sorted(self._flow_counts), dtype=np.int64)
        parts = [
            (
                np.concatenate(self._intervals[int(app)])
                if int(app) in self._intervals
                else np.empty(0, np.float64)
            )
            for app in burst_apps
        ]
        offsets = np.zeros(len(parts) + 1, dtype=np.int64)
        if parts:
            offsets[1:] = np.cumsum([len(p) for p in parts])
        return {
            "flow_keys": flow_keys,
            "flow_last": np.array(
                [self._flow_last[int(k)] for k in flow_keys], dtype=np.float64
            ),
            "flow_count_apps": flow_count_apps,
            "flow_counts": np.array(
                [self._flow_counts[int(a)] for a in flow_count_apps],
                dtype=np.int64,
            ),
            "burst_apps": burst_apps,
            "burst_counts": np.array(
                [self._burst_counts.get(int(a), 0) for a in burst_apps],
                dtype=np.int64,
            ),
            "burst_last_ts": np.array(
                [self._burst_last_ts[int(a)] for a in burst_apps],
                dtype=np.float64,
            ),
            "burst_last_start": np.array(
                [
                    self._burst_last_start.get(int(a), np.nan)
                    for a in burst_apps
                ],
                dtype=np.float64,
            ),
            "interval_offsets": offsets,
            "intervals": (
                np.concatenate(parts) if parts else np.empty(0, np.float64)
            ),
        }

    @classmethod
    def from_payload(
        cls,
        payload: Dict[str, np.ndarray],
        flow_gap: float = DEFAULT_FLOW_GAP,
        burst_gap: float = DEFAULT_BURST_GAP,
    ) -> "CadenceTracker":
        tracker = cls(flow_gap, burst_gap)
        for k, v in zip(payload["flow_keys"], payload["flow_last"]):
            tracker._flow_last[int(k)] = float(v)
        for a, c in zip(payload["flow_count_apps"], payload["flow_counts"]):
            tracker._flow_counts[int(a)] = int(c)
        offsets = np.asarray(payload["interval_offsets"], np.int64)
        intervals = np.asarray(payload["intervals"], np.float64)
        for i, (app, count, last_ts, last_start) in enumerate(
            zip(
                payload["burst_apps"],
                payload["burst_counts"],
                payload["burst_last_ts"],
                payload["burst_last_start"],
            )
        ):
            app = int(app)
            tracker._burst_counts[app] = int(count)
            tracker._burst_last_ts[app] = float(last_ts)
            if not np.isnan(last_start):
                tracker._burst_last_start[app] = float(last_start)
            lo, hi = int(offsets[i]), int(offsets[i + 1])
            if hi > lo:
                tracker._intervals[app] = [intervals[lo:hi].copy()]
        return tracker
