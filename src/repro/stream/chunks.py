"""Chunked packet sources for streaming ingestion.

Two sources feed :class:`repro.stream.StreamIngestor`, both yielding
one user's packets as a sequence of time-ordered, bounded-size
:class:`~repro.trace.arrays.PacketArray` chunks:

* :class:`CsvStreamSource` — the ``io_text`` CSV schemas, parsed row
  by row through the same lazy iterators the batch reader uses
  (:func:`repro.trace.io_text.iter_packet_rows`), so app registration
  order — and therefore every app id — is identical to
  :func:`repro.trace.io_text.dataset_from_csv` over the same files.
* :class:`NpzStreamSource` — a saved :class:`~repro.trace.dataset.Dataset`
  archive, read member-by-member through :mod:`zipfile` so only one
  chunk of one user's packet table is ever decompressed into memory.

Both expose the same protocol: ``registry``, ``user_ids``,
``window(uid)``, ``n_packets(uid)``, ``iter_chunks(uid, skip=0)`` and a
:meth:`signature` digest that binds checkpoints to their source.
"""

from __future__ import annotations

import hashlib
import json
import zipfile
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import faults
from repro.errors import StreamError, TraceError
from repro.trace.arrays import PACKET_DTYPE, PacketArray
from repro.trace.dataset import AppRegistry
from repro.trace.events import EventLog
from repro.trace.intervals import label_packet_states
from repro.trace.io_text import (
    PathLike,
    iter_event_rows,
    iter_packet_rows,
)

#: Default rows per chunk — small enough that a chunk of the paper-scale
#: packet table is a few hundred kilobytes, large enough to amortise the
#: per-chunk numpy overhead.
DEFAULT_CHUNK_SIZE = 65536


class RowQuarantine:
    """Tally of malformed input rows a source dropped instead of raising.

    Real collection logs contain garbage lines; with
    ``quarantine_rows=True`` a :class:`CsvStreamSource` records each one
    here — a count plus the first few error messages — and the run
    continues bit-identical on the surviving rows.
    :meth:`flush_to` reports the tally into a
    :class:`~repro.metrics.RunMetrics` exactly once.
    """

    #: How many example messages are kept.
    SAMPLE_LIMIT = 5

    def __init__(self) -> None:
        self.count = 0
        self.samples: List[str] = []
        self._flushed = False

    def record(self, error: Exception) -> None:
        """Count one dropped row, keeping the first few messages."""
        self.count += 1
        if len(self.samples) < self.SAMPLE_LIMIT:
            self.samples.append(str(error))

    def flush_to(self, metrics) -> None:
        """Report count + samples into ``metrics`` (idempotent)."""
        if self._flushed or not self.count:
            return
        self._flushed = True
        metrics.count("faults.rows_quarantined", self.count)
        for sample in self.samples:
            metrics.sample("faults.rows_quarantined", sample)


class CsvStreamSource:
    """Stream per-user packets from ``io_text`` CSV files.

    A cheap prepass walks every user's files once — registering app
    names in the exact order the batch reader would and recording the
    time horizon — so ids, windows and state labels match
    :func:`~repro.trace.io_text.dataset_from_csv` over the same files
    exactly. Packet CSVs must already be time-sorted (the batch path
    sorts in RAM; a bounded-memory reader cannot), which is checked
    during iteration and reported with file name and line number.

    Event CSVs are read whole in the prepass (event streams are tiny
    next to packet tables) and used to state-label each chunk; only
    packet rows are streamed.

    Args:
        user_files: One ``(packets_csv, events_csv_or_None)`` per user;
            user ids are assigned 1..N in order, as in the batch reader.
        chunk_size: Maximum packets per yielded chunk.
        duration: Observation window length; defaults to the latest
            packet/event time across users rounded up to a whole day
            (the batch reader's rule).
        quarantine_rows: Drop malformed packet rows instead of raising,
            recording each into :attr:`quarantine`; the run's numbers
            stay bit-identical to a batch run over the surviving rows.
    """

    def __init__(
        self,
        user_files: Sequence[Tuple[PathLike, Optional[PathLike]]],
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        duration: Optional[float] = None,
        quarantine_rows: bool = False,
    ) -> None:
        if not user_files:
            raise StreamError("at least one user is required")
        if chunk_size < 1:
            raise StreamError(f"chunk_size must be >= 1: {chunk_size}")
        self.chunk_size = int(chunk_size)
        self._files = [
            (Path(p), Path(e) if e is not None else None)
            for p, e in user_files
        ]
        self.registry = AppRegistry()
        self.quarantine = RowQuarantine()
        self._quarantine_rows = bool(quarantine_rows)
        #: The prepass records dropped rows; re-iteration must skip the
        #: same rows without counting them twice.
        on_bad = self.quarantine.record if self._quarantine_rows else None
        self._events: Dict[int, EventLog] = {}
        self._counts: Dict[int, int] = {}
        horizon = 0.0
        for uid, (packets_path, events_path) in enumerate(
            self._files, start=1
        ):
            count = 0
            last_ts = None
            # Line numbers, not surviving-row ordinals: with quarantine
            # dropping rows the two diverge, and "sort the file" advice
            # must point at the actual offending file line.
            for line_num, row in self._packet_rows(
                packets_path, on_bad_row=on_bad, with_line_numbers=True
            ):
                count += 1
                if last_ts is not None and row[0] < last_ts:
                    raise StreamError(
                        f"{packets_path.name}:{line_num}: packets not "
                        f"time-sorted (t={row[0]} after t={last_ts}); "
                        "sort the file before streaming it"
                    )
                last_ts = row[0]
            if last_ts is not None:
                horizon = max(horizon, last_ts)
            events = EventLog()
            if events_path is not None:
                for kind, event in iter_event_rows(events_path, self.registry):
                    if kind == "process":
                        events.add_process_event(event)
                    elif kind == "screen":
                        events.add_screen_event(event)
                    else:
                        events.add_input_event(event)
                    horizon = max(horizon, event.timestamp)
            self._events[uid] = events
            self._counts[uid] = count
        if duration is None:
            duration = float(np.ceil(horizon / 86400.0) * 86400.0) or 86400.0
        self.duration = float(duration)

    @property
    def user_ids(self) -> List[int]:
        """User ids in ingestion order (1..N, as the batch reader)."""
        return list(range(1, len(self._files) + 1))

    def window(self, user_id: int) -> Tuple[float, float]:
        """Simulation window of one user — ``(0, duration)`` for CSV."""
        return (0.0, self.duration)

    def n_packets(self, user_id: int) -> int:
        """Total packet rows of one user (known from the prepass)."""
        return self._counts[user_id]

    def events_for(self, user_id: int) -> EventLog:
        """One user's full event log (loaded in the prepass)."""
        return self._events[user_id]

    def _packet_rows(
        self,
        packets_path: Path,
        on_bad_row=None,
        inject: bool = False,
        with_line_numbers: bool = False,
    ) -> Iterator[Tuple[float, int, int, int, int]]:
        """One file's rows with trace defects surfaced as StreamError."""
        try:
            yield from iter_packet_rows(
                packets_path,
                self.registry,
                on_bad_row=on_bad_row,
                inject=inject,
                with_line_numbers=with_line_numbers,
            )
        except TraceError as exc:
            raise StreamError(f"malformed packet row: {exc}") from exc

    @staticmethod
    def _drop_silently(error: Exception) -> None:
        """Re-iteration skip hook: the prepass already recorded the row."""

    def iter_chunks(
        self, user_id: int, skip: int = 0
    ) -> Iterator[PacketArray]:
        """Yield one user's packets as state-labelled, bounded chunks.

        ``skip`` drops that many leading (surviving) rows — how a
        resumed run seeks past packets its checkpoint already accounted
        for (the rows are re-read but nothing is recomputed). This is
        the one CSV iteration wired to the ``io.packet_row`` fault
        site.
        """
        packets_path, _ = self._files[user_id - 1]
        events = self._events[user_id]
        on_bad = self._drop_silently if self._quarantine_rows else None
        rows: List[Tuple[float, int, int, int, int]] = []
        for i, row in enumerate(
            self._packet_rows(packets_path, on_bad_row=on_bad, inject=True)
        ):
            if i < skip:
                continue
            rows.append(row)
            if len(rows) >= self.chunk_size:
                yield self._chunk_from_rows(rows, events)
                rows = []
        if rows:
            yield self._chunk_from_rows(rows, events)

    def _chunk_from_rows(
        self,
        rows: List[Tuple[float, int, int, int, int]],
        events: EventLog,
    ) -> PacketArray:
        columns = list(zip(*rows))
        chunk = PacketArray.from_columns(
            np.array(columns[0], dtype=np.float64),
            np.array(columns[1], dtype=np.uint32),
            np.array(columns[2], dtype=np.uint8),
            np.array(columns[3], dtype=np.uint16),
            np.array(columns[4], dtype=np.uint32),
        )
        # Labelling is elementwise (per-app searchsorted against the
        # full event log), so labelling chunk-by-chunk writes the exact
        # labels the batch reader's whole-trace pass would.
        label_packet_states(chunk, events)
        return chunk

    def signature(self) -> str:
        """Digest binding a checkpoint to these files and settings."""
        payload = json.dumps(
            {
                "kind": "csv",
                "files": [
                    [str(p), str(e) if e is not None else None]
                    for p, e in self._files
                ],
                "duration": self.duration,
            }
        )
        return hashlib.blake2b(
            payload.encode("utf-8"), digest_size=12
        ).hexdigest()


class NpzStreamSource:
    """Stream per-user packets out of a saved dataset archive.

    Reads the archive the way :meth:`repro.trace.dataset.Dataset.load`
    does — JSON header member for registry, users and windows — but
    never materialises a packet table: each ``packets_<uid>`` member is
    opened as a compressed zip stream, its ``.npy`` header parsed, and
    records are pulled ``chunk_size`` rows at a time. Peak memory is one
    chunk, not one trace. Stored packets already carry their state
    labels, so chunks need no relabelling.
    """

    def __init__(
        self, path: PathLike, chunk_size: int = DEFAULT_CHUNK_SIZE
    ) -> None:
        if chunk_size < 1:
            raise StreamError(f"chunk_size must be >= 1: {chunk_size}")
        self.path = Path(path)
        self.chunk_size = int(chunk_size)
        #: Always empty for archives (binary members are all-or-nothing,
        #: there is no row-level quarantine); present so ingest can
        #: flush any source's quarantine uniformly.
        self.quarantine = RowQuarantine()
        with zipfile.ZipFile(self.path) as archive:
            with archive.open("header.npy") as handle:
                header_bytes = _read_npy_stream_fully(handle)
        header = json.loads(header_bytes.tobytes().decode("utf-8"))
        self.registry = AppRegistry.from_json(json.dumps(header["registry"]))
        self._users = {
            int(entry["user_id"]): (
                float(entry["start"]),
                float(entry["end"]),
            )
            for entry in header["users"]
        }
        self._order = [int(entry["user_id"]) for entry in header["users"]]
        self._counts: Dict[int, int] = {}
        with zipfile.ZipFile(self.path) as archive:
            for uid in self._order:
                with archive.open(f"packets_{uid}.npy") as handle:
                    shape, dtype = _read_npy_header(handle, f"packets_{uid}")
                    self._counts[uid] = int(shape[0])

    @property
    def user_ids(self) -> List[int]:
        """User ids in archive (= dataset) order."""
        return list(self._order)

    def window(self, user_id: int) -> Tuple[float, float]:
        """One user's stored observation window."""
        return self._users[user_id]

    def n_packets(self, user_id: int) -> int:
        """Stored packet count of one user (from the .npy header)."""
        return self._counts[user_id]

    def iter_chunks(
        self, user_id: int, skip: int = 0
    ) -> Iterator[PacketArray]:
        """Yield one user's packets in bounded chunks, decompressing
        ``chunk_size`` records at a time straight off the archive."""
        with zipfile.ZipFile(self.path) as archive:
            with archive.open(f"packets_{user_id}.npy") as raw:
                shape, dtype = _read_npy_header(
                    raw, f"packets_{user_id}"
                )
                # The npz.member fault site: an injected "truncate"
                # makes this stream end early, exactly like a cut-short
                # archive; _read_exactly below turns that into
                # StreamError, never a silently short chunk.
                handle = faults.maybe_truncate_stream("npz.member", raw)
                total = int(shape[0])
                itemsize = dtype.itemsize
                _discard_exactly(handle, skip * itemsize)
                remaining = total - skip
                while remaining > 0:
                    rows = min(self.chunk_size, remaining)
                    buffer = _read_exactly(handle, rows * itemsize)
                    chunk = np.frombuffer(buffer, dtype=dtype).copy()
                    remaining -= rows
                    yield PacketArray(chunk)

    def signature(self) -> str:
        """Digest binding a checkpoint to this archive."""
        payload = json.dumps(
            {
                "kind": "npz",
                "path": str(self.path),
                "users": [[uid, self._counts[uid]] for uid in self._order],
            }
        )
        return hashlib.blake2b(
            payload.encode("utf-8"), digest_size=12
        ).hexdigest()


StreamSource = Union[CsvStreamSource, NpzStreamSource]


def _read_npy_header(handle, member: str) -> Tuple[tuple, np.dtype]:
    """Parse one ``.npy`` member's header off a zip stream.

    Leaves the stream positioned at the first data byte and validates
    the layout a packet table must have (C-order records of
    :data:`~repro.trace.arrays.PACKET_DTYPE`).
    """
    version = np.lib.format.read_magic(handle)
    if version == (1, 0):
        shape, fortran, dtype = np.lib.format.read_array_header_1_0(handle)
    elif version == (2, 0):
        shape, fortran, dtype = np.lib.format.read_array_header_2_0(handle)
    else:
        raise StreamError(f"{member}: unsupported .npy version {version}")
    if fortran:
        raise StreamError(f"{member}: Fortran-order arrays not supported")
    if dtype != PACKET_DTYPE:
        raise StreamError(
            f"{member}: expected packet dtype {PACKET_DTYPE}, got {dtype}"
        )
    return shape, dtype


def _read_npy_stream_fully(handle) -> np.ndarray:
    """Read one small non-packet ``.npy`` member (the JSON header)."""
    version = np.lib.format.read_magic(handle)
    if version == (1, 0):
        shape, _, dtype = np.lib.format.read_array_header_1_0(handle)
    else:
        shape, _, dtype = np.lib.format.read_array_header_2_0(handle)
    count = int(np.prod(shape)) if shape else 1
    buffer = _read_exactly(handle, count * dtype.itemsize)
    return np.frombuffer(buffer, dtype=dtype).reshape(shape)


def _read_exactly(handle, n_bytes: int) -> bytes:
    """Read exactly ``n_bytes`` off a (possibly short-reading) stream."""
    parts = []
    remaining = n_bytes
    while remaining > 0:
        piece = handle.read(remaining)
        if not piece:
            raise StreamError("truncated packet member in archive")
        parts.append(piece)
        remaining -= len(piece)
    return b"".join(parts)


def _discard_exactly(handle, n_bytes: int) -> None:
    """Skip ``n_bytes`` of a compressed stream in bounded pieces."""
    remaining = n_bytes
    while remaining > 0:
        piece = handle.read(min(remaining, 1 << 20))
        if not piece:
            raise StreamError("truncated packet member in archive")
        remaining -= len(piece)
