"""Per-user streaming accumulators and the finished study readout.

The accumulation tier of the streaming stack, split out of
``stream.ingest`` so shard executors and mergers (:mod:`repro.shard`)
can reuse it without importing the driver: one
:class:`UserStreamAccumulator` per user carries the radio state and the
:class:`~repro.core.readout.KeyedTotals` partials across chunks, and a
completed run's accumulators become a :class:`StreamResult` — a
totals-tier :class:`~repro.core.readout.EnergyReadout` whose every
reduction is bit-identical to the batch engine's.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.periodicity import DEFAULT_BURST_GAP
from repro.core.readout import (
    DEFAULT_FLOW_GAP,
    KeyedTotals,
    TotalsReadout,
    UserTotalsView,
    combined_app_state_keys,
)
from repro.errors import StreamError, TaskFailure
from repro.radio.attribution import TailPolicy
from repro.radio.base import RadioModel
from repro.radio.streaming import RadioCarry, StreamingAttribution
from repro.stream.cadence import CadenceTracker
from repro.stream.checkpoint import UserCheckpoint
from repro.trace.arrays import PacketArray


class UserStreamAccumulator:
    """One user's in-flight state: radio carry plus partial totals."""

    def __init__(
        self,
        user_id: int,
        window: Tuple[float, float],
        cadence: bool = True,
    ) -> None:
        self.user_id = user_id
        self.window = window
        self.carry: Optional[Dict[str, np.ndarray]] = None
        self.rows_consumed = 0
        self.done = False
        self.idle_energy = 0.0
        self.energy = KeyedTotals()
        self.app_state = KeyedTotals()
        self.bytes = KeyedTotals(dtype=np.int64)
        self.cadence: Optional[CadenceTracker] = (
            CadenceTracker() if cadence else None
        )

    def adopt(
        self,
        settled: Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
        carry: Optional[Dict[str, np.ndarray]],
    ) -> None:
        """Fold one round's settled packets in; take the new carry."""
        apps, states, sizes, per_packet = settled
        self.energy.add(apps, per_packet)
        self.app_state.add(combined_app_state_keys(apps, states), per_packet)
        self.bytes.add(
            combined_app_state_keys(apps, states), sizes.astype(np.int64)
        )
        if carry is not None:
            self.carry = carry

    def observe_chunk(self, packets: PacketArray) -> None:
        """Feed one raw chunk to the cadence tracker (if enabled)."""
        if self.cadence is not None:
            self.cadence.observe(packets)

    def finish(self, model: RadioModel, policy: TailPolicy) -> None:
        """Settle the pending packet and the idle floor."""
        carry = (
            RadioCarry.from_payload(self.carry)
            if self.carry is not None
            else None
        )
        sim = StreamingAttribution(model, policy, self.window, carry)
        settled, idle = sim.finish()
        self.adopt(
            (settled.apps, settled.states, settled.sizes, settled.per_packet),
            None,
        )
        self.idle_energy = idle
        self.done = True

    # ------------------------------------------------------------------
    # Checkpoint round-trip
    # ------------------------------------------------------------------
    def to_checkpoint(self) -> UserCheckpoint:
        if self.done:
            status = "done"
        elif self.rows_consumed or self.carry is not None:
            status = "running"
        else:
            status = "pending"
        energy_keys, energy_values = self.energy.payload()
        state_keys, state_values = self.app_state.payload()
        bytes_keys, bytes_values = self.bytes.payload()
        return UserCheckpoint(
            user_id=self.user_id,
            status=status,
            rows_consumed=self.rows_consumed,
            carry=self.carry,
            energy_keys=energy_keys,
            energy_values=energy_values,
            state_keys=state_keys,
            state_values=state_values,
            bytes_keys=bytes_keys,
            bytes_values=bytes_values,
            idle_energy=self.idle_energy,
            window=self.window,
            cadence=(
                self.cadence.payload() if self.cadence is not None else None
            ),
        )

    @classmethod
    def from_checkpoint(
        cls, saved: UserCheckpoint, window: Tuple[float, float]
    ) -> "UserStreamAccumulator":
        acc = cls(saved.user_id, window, cadence=saved.cadence is not None)
        acc.rows_consumed = saved.rows_consumed
        acc.carry = saved.carry
        acc.done = saved.status == "done"
        acc.idle_energy = saved.idle_energy
        acc.energy = KeyedTotals(saved.energy_keys, saved.energy_values)
        acc.app_state = KeyedTotals(saved.state_keys, saved.state_values)
        acc.bytes = KeyedTotals(
            saved.bytes_keys, saved.bytes_values, dtype=np.int64
        )
        if saved.cadence is not None:
            acc.cadence = CadenceTracker.from_payload(saved.cadence)
        return acc


class UserStreamResult(UserTotalsView):
    """One user's finished streaming totals (grouped views).

    A :class:`~repro.core.readout.UserTotalsView` built from the
    accumulator's finished :class:`~repro.core.readout.KeyedTotals` —
    the identical view :meth:`StudyEnergy.user_totals
    <repro.core.accounting.StudyEnergy.user_totals>` derives from the
    batch arrays.
    """

    def __init__(self, acc: UserStreamAccumulator) -> None:
        super().__init__(
            acc.user_id,
            acc.energy.as_dict(),
            acc.app_state.as_dict(),
            acc.bytes.as_dict(),
            acc.idle_energy,
        )


class StreamResult(TotalsReadout):
    """Study-wide totals of one completed streaming ingestion.

    A totals-tier :class:`~repro.core.readout.EnergyReadout`: every
    reduction replays the exact fold
    :class:`~repro.core.accounting.StudyEnergy` performs — users in
    ingestion order through
    :func:`~repro.core.readout.merge_keyed_totals`, idle via a
    sequential ``sum`` — so each is bit-identical to its batch
    counterpart. ``attributed_energy`` is the one exception: the batch
    scalar sums per-packet arrays whole, an association no stream can
    replay, so here it is defined as the fold of the (bit-identical)
    per-app totals.
    """

    def __init__(
        self,
        users: List[UserStreamResult],
        failures: Optional[Dict[int, TaskFailure]] = None,
        *,
        registry=None,
        windows=None,
        cadences=None,
        flow_gap: float = DEFAULT_FLOW_GAP,
        burst_gap: float = DEFAULT_BURST_GAP,
    ) -> None:
        super().__init__(
            users,
            registry=registry,
            windows=windows,
            cadences=cadences,
            flow_gap=flow_gap,
            burst_gap=burst_gap,
        )
        self.users = users
        self._by_id = {u.user_id: u for u in users}
        #: Quarantined users: ``{user_id: TaskFailure}``. Only populated
        #: when the ingestor ran with ``quarantine=True``; these users'
        #: partial totals are *excluded* from every reduction.
        self.failures: Dict[int, TaskFailure] = dict(failures or {})

    def user(self, user_id: int) -> UserStreamResult:
        """One user's totals."""
        try:
            return self._by_id[user_id]
        except KeyError:
            raise StreamError(f"unknown user id {user_id}") from None
