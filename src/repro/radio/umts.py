"""3G/UMTS power model.

Parameters follow the widely used measurements of Qian et al.
(MobiSys'11, the paper's [22]) and Balasubramanian et al. (IMC'09, the
paper's [9]) for a UMTS network:

* idle                          ~ 10 mW
* promotion IDLE -> DCH         2.0 s at ~800 mW
* DCH tail                      5 s at ~800 mW
* FACH tail                     12 s at ~460 mW
* transfer power on DCH         ~800 mW at much lower rates than LTE

3G transfers are slower, so per-byte energy is substantially higher than
LTE even though instantaneous powers are lower — the reason the paper's
LTE-centric tail analysis generalises.
"""

from __future__ import annotations

from repro.radio.base import (
    RadioModel,
    TailPhase,
    energy_per_byte_from_throughput_curve,
)
from repro.units import mw

IDLE_POWER_W = mw(10.0)
PROMOTION_DURATION_S = 2.0
PROMOTION_POWER_W = mw(800.0)
DCH_TAIL = TailPhase(duration=5.0, power=mw(800.0))
FACH_TAIL = TailPhase(duration=12.0, power=mw(460.0))

#: Effective throughput-linear curve for DCH transfers.
ALPHA_UP_MW_PER_MBPS = 868.0
ALPHA_DOWN_MW_PER_MBPS = 122.0
BETA_MW = 817.0
NOMINAL_UPLINK_MBPS = 1.0
NOMINAL_DOWNLINK_MBPS = 3.0


def umts_model(
    uplink_mbps: float = NOMINAL_UPLINK_MBPS,
    downlink_mbps: float = NOMINAL_DOWNLINK_MBPS,
) -> RadioModel:
    """Build the 3G/UMTS power model (DCH + FACH two-phase tail)."""
    return RadioModel(
        name="umts",
        idle_power=IDLE_POWER_W,
        promotion_duration=PROMOTION_DURATION_S,
        promotion_power=PROMOTION_POWER_W,
        tail_phases=(DCH_TAIL, FACH_TAIL),
        energy_per_byte_up=energy_per_byte_from_throughput_curve(
            ALPHA_UP_MW_PER_MBPS, BETA_MW, uplink_mbps
        ),
        energy_per_byte_down=energy_per_byte_from_throughput_curve(
            ALPHA_DOWN_MW_PER_MBPS, BETA_MW, downlink_mbps
        ),
    )


#: The default 3G model.
UMTS_DEFAULT = umts_model()
