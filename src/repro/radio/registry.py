"""Radio model registry: models by name for CLIs and configs."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import ModelError
from repro.radio.base import RadioModel
from repro.radio.lte import lte_fast_dormancy_model, lte_model
from repro.radio.nr import nr_model
from repro.radio.umts import umts_model
from repro.radio.wifi import wifi_model

_FACTORIES: Dict[str, Callable[[], RadioModel]] = {
    "lte": lte_model,
    "lte-drx": lambda: lte_model(drx_detail=True),
    "lte-fd": lte_fast_dormancy_model,
    "umts": umts_model,
    "3g": umts_model,
    "wifi": wifi_model,
    "nr": nr_model,
    "5g": nr_model,
}


def available_models() -> List[str]:
    """Registered model names."""
    return sorted(_FACTORIES)


def get_model(name: str) -> RadioModel:
    """Build a model by registry name (case-insensitive)."""
    try:
        factory = _FACTORIES[name.strip().lower()]
    except KeyError:
        raise ModelError(
            f"unknown radio model {name!r}; available: {available_models()}"
        ) from None
    return factory()
