"""Radio power models and energy engines.

Implements the "standard power model for LTE" the paper uses ([16] Huang
et al. MobiSys'12, [22] Qian et al. MobiSys'11): an RRC state machine
with a promotion delay, a high-power tail after each transfer, and
throughput-linear transfer power, plus comparable 3G/UMTS and WiFi PSM
models.

Two engines compute energy from packet timelines:

* :mod:`repro.radio.machine` -- an exact event-driven state machine that
  also produces a state-interval log (used for Fig 4-style timelines and
  in-lab experiments);
* :mod:`repro.radio.vectorized` -- a numpy implementation for
  million-packet traces, property-tested to agree with the machine.

:mod:`repro.radio.attribution` applies the paper's per-app attribution
rule: transfer energy per packet, tail energy to the last packet before
the tail, promotion energy to the packet that triggered it.
"""

from repro.radio.base import (
    RadioModel,
    TailPhase,
    RadioState,
    RadioInterval,
    energy_per_byte_from_throughput_curve,
)
from repro.radio.lte import lte_model, LTE_DEFAULT, lte_fast_dormancy_model
from repro.radio.nr import nr_model, NR_DEFAULT
from repro.radio.umts import umts_model, UMTS_DEFAULT
from repro.radio.wifi import wifi_model, WIFI_DEFAULT
from repro.radio.machine import RadioStateMachine, SimulationResult
from repro.radio.registry import available_models, get_model
from repro.radio.streaming import (
    FinalizedChunk,
    RadioCarry,
    StreamingAttribution,
)
from repro.radio.vectorized import PacketEnergy, blocked_sum, compute_packet_energy
from repro.radio.attribution import (
    AttributionResult,
    AttributionTask,
    TailPolicy,
    attribute_energy,
    result_from_payload,
    result_payload,
)

__all__ = [
    "AttributionResult",
    "AttributionTask",
    "result_from_payload",
    "result_payload",
    "FinalizedChunk",
    "LTE_DEFAULT",
    "NR_DEFAULT",
    "PacketEnergy",
    "RadioCarry",
    "RadioInterval",
    "RadioModel",
    "RadioState",
    "RadioStateMachine",
    "SimulationResult",
    "StreamingAttribution",
    "TailPhase",
    "TailPolicy",
    "UMTS_DEFAULT",
    "WIFI_DEFAULT",
    "attribute_energy",
    "available_models",
    "blocked_sum",
    "energy_per_byte_from_throughput_curve",
    "get_model",
    "compute_packet_energy",
    "lte_fast_dormancy_model",
    "lte_model",
    "nr_model",
    "umts_model",
    "wifi_model",
]
