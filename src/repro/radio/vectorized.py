"""Vectorised energy engine.

Computes exactly the quantities of
:class:`~repro.radio.machine.RadioStateMachine` — per-packet transfer,
tail and promotion energy plus unattributed idle energy — using numpy
over the whole packet array at once. This is the engine every
study-scale analysis uses; the property tests in
``tests/test_radio_agreement.py`` pin it to the event-driven reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import ModelError, TraceError
from repro.radio.base import RadioModel
from repro.trace.arrays import PacketArray
from repro.trace.packet import Direction

#: Block length of :func:`blocked_sum` — the float reduction unit shared
#: by the batch engine and the streaming engine's idle accumulator.
SUM_BLOCK = 8192


def blocked_sum(values: np.ndarray, block: int = SUM_BLOCK) -> float:
    """Sum ``values`` in fixed blocks aligned to the array start.

    ``float(values.sum())`` associates differently for every array
    length, so a streamed consumer that sees the same values in chunks
    could never reproduce it bit-for-bit. Summing block-by-block (one
    ``np.sum`` per ``block`` values, partials folded left-to-right)
    gives a reduction any chunking can replay exactly: a streaming
    accumulator that buffers values to the same absolute block
    boundaries performs the identical sequence of float additions (see
    :class:`repro.radio.streaming.StreamingAttribution`).
    """
    total = 0.0
    for start in range(0, len(values), block):
        total += float(values[start : start + block].sum())
    return total


@dataclass
class PacketEnergy:
    """Per-packet energy components over one device timeline."""

    model: RadioModel
    window: Tuple[float, float]
    transfer: np.ndarray
    tail: np.ndarray
    promotion: np.ndarray
    idle_energy: float

    @property
    def per_packet(self) -> np.ndarray:
        """Total energy attributed to each packet (J)."""
        return self.transfer + self.tail + self.promotion

    @property
    def attributed_energy(self) -> float:
        """Total energy attributed to packets (J)."""
        return float(self.per_packet.sum())

    @property
    def total_energy(self) -> float:
        """Attributed plus idle energy: full radio consumption (J)."""
        return self.attributed_energy + self.idle_energy

    def __len__(self) -> int:
        return len(self.transfer)


def transfer_energy_vector(
    model: RadioModel, packets: PacketArray
) -> np.ndarray:
    """Per-packet transfer energy: linear in bytes, by direction.

    One cheap vectorised pass; the pool/cache boundary recomputes this
    rather than shipping it (see ``radio.attribution.result_payload``),
    so it must stay a pure function of (model, packets).
    """
    sizes = packets.sizes.astype(np.float64)
    is_up = packets.directions == int(Direction.UPLINK)
    epb = np.where(is_up, model.energy_per_byte_up, model.energy_per_byte_down)
    return sizes * epb


def packet_gaps(ts: np.ndarray, window_end: float) -> np.ndarray:
    """Gap following each packet (the last runs to the window end)."""
    n = len(ts)
    gaps = np.empty(n)
    gaps[:-1] = np.diff(ts)
    gaps[-1] = window_end - ts[-1]
    return gaps


def promotion_energy_vector(
    model: RadioModel, gaps: np.ndarray
) -> np.ndarray:
    """Per-packet promotion energy: first packet, and any packet after
    a demoted gap. Also recomputed at the pool/cache boundary."""
    promoted = np.empty(len(gaps), dtype=bool)
    promoted[0] = True
    promoted[1:] = gaps[:-1] > model.tail_duration
    return np.where(promoted, model.promotion_energy, 0.0)


def compute_packet_energy(
    model: RadioModel,
    packets: PacketArray,
    window: Optional[Tuple[float, float]] = None,
) -> PacketEnergy:
    """Vectorised per-packet energy over a time-sorted packet array.

    Semantics are identical to
    :meth:`repro.radio.machine.RadioStateMachine.simulate`; see that
    module's docstring for the attribution rules.
    """
    if not packets.is_time_sorted():
        raise TraceError("packets must be time-sorted")
    n = len(packets)
    ts = packets.timestamps.astype(np.float64)
    if window is None:
        window = (float(ts[0]), float(ts[-1])) if n else (0.0, 0.0)
    w0, w1 = window
    if w1 < w0:
        raise ModelError(f"window end {w1} before start {w0}")
    if n and (ts[0] < w0 or ts[-1] > w1):
        raise TraceError("packets outside the simulation window")

    if n == 0:
        return PacketEnergy(
            model,
            window,
            np.zeros(0),
            np.zeros(0),
            np.zeros(0),
            idle_energy=(w1 - w0) * model.idle_power,
        )

    tail_d = model.tail_duration

    transfer = transfer_energy_vector(model, packets)
    gaps = packet_gaps(ts, w1)

    # Tail energy of the radio-on time after each packet.
    on_times = np.minimum(gaps, tail_d)
    tail = model.tail_energy_vector(on_times)

    promotion = promotion_energy_vector(model, gaps)

    # Idle: lead-in before the first promotion, demoted parts of
    # inter-packet gaps (minus the following promotion ramp), and the
    # post-trace remainder.
    idle_time = max(float(ts[0]) - model.promotion_duration - w0, 0.0)
    inner = gaps[:-1]
    idle_inner = np.clip(inner - tail_d - model.promotion_duration, 0.0, None)
    idle_time += blocked_sum(idle_inner)
    idle_time += max(gaps[-1] - tail_d, 0.0)
    idle_energy = idle_time * model.idle_power

    return PacketEnergy(model, window, transfer, tail, promotion, idle_energy)
