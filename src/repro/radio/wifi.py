"""WiFi (802.11 PSM) power model.

The paper focuses on cellular traffic "as it consumes far more energy
than WiFi"; this model exists to quantify that comparison in the
ablation benches. Parameters follow common Galaxy-class measurements
(e.g. Huang et al. MobiSys'12's WiFi baseline):

* idle (PSM, associated)   ~ 30 mW
* "promotion" (wake)       ~ 0 s (negligible; modelled as 10 ms)
* tail (PSM timeout)       ~ 220 ms at ~720 mW
* transfer power           ~ 720 mW at high link rates

High rates and a two-orders-of-magnitude shorter tail make WiFi's
per-burst cost a tiny fraction of LTE's.
"""

from __future__ import annotations

from repro.radio.base import (
    RadioModel,
    TailPhase,
    energy_per_byte_from_throughput_curve,
)
from repro.units import ms, mw

IDLE_POWER_W = mw(30.0)
PROMOTION_DURATION_S = ms(10.0)
PROMOTION_POWER_W = mw(720.0)
TAIL = TailPhase(duration=ms(220.0), power=mw(720.0))

ALPHA_UP_MW_PER_MBPS = 28.3
ALPHA_DOWN_MW_PER_MBPS = 13.7
BETA_MW = 330.0
NOMINAL_UPLINK_MBPS = 20.0
NOMINAL_DOWNLINK_MBPS = 40.0


def wifi_model(
    uplink_mbps: float = NOMINAL_UPLINK_MBPS,
    downlink_mbps: float = NOMINAL_DOWNLINK_MBPS,
) -> RadioModel:
    """Build the WiFi PSM power model."""
    return RadioModel(
        name="wifi",
        idle_power=IDLE_POWER_W,
        promotion_duration=PROMOTION_DURATION_S,
        promotion_power=PROMOTION_POWER_W,
        tail_phases=(TAIL,),
        energy_per_byte_up=energy_per_byte_from_throughput_curve(
            ALPHA_UP_MW_PER_MBPS, BETA_MW, uplink_mbps
        ),
        energy_per_byte_down=energy_per_byte_from_throughput_curve(
            ALPHA_DOWN_MW_PER_MBPS, BETA_MW, downlink_mbps
        ),
    )


#: The default WiFi model.
WIFI_DEFAULT = wifi_model()
