"""Event-driven radio state-machine simulator.

The reference energy engine: walks a time-sorted packet sequence through
the radio model's state machine, producing

* per-packet energy components (transfer, tail, promotion),
* unattributed idle energy, and
* a :class:`~repro.radio.base.RadioInterval` log of the radio's power
  timeline (used for Fig 4-style visualisations and the in-lab harness).

Semantics (shared exactly with :mod:`repro.radio.vectorized`, which the
property tests enforce):

* a packet arriving more than ``tail_duration`` after the previous one
  (or the first packet) triggers a full promotion, charged to it;
* after every packet the radio follows the tail power profile until the
  next packet or for the full tail, whichever is shorter; that "radio
  on" energy is charged to the packet *preceding* the gap — the paper's
  rule of assigning tail energy to the last packet sent before the tail;
* per-byte transfer energy is charged to each packet;
* whatever time remains in a gap after the tail (and the next packet's
  promotion ramp) is idle and attributed to no app.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ModelError, TraceError
from repro.radio.base import RadioInterval, RadioModel, RadioState
from repro.trace.arrays import PacketArray
from repro.trace.packet import Direction


@dataclass
class SimulationResult:
    """Output of one state-machine run."""

    model: RadioModel
    window: Tuple[float, float]
    transfer: np.ndarray
    tail: np.ndarray
    promotion: np.ndarray
    idle_energy: float
    intervals: List[RadioInterval] = field(default_factory=list)

    @property
    def per_packet(self) -> np.ndarray:
        """Total energy attributed to each packet."""
        return self.transfer + self.tail + self.promotion

    @property
    def attributed_energy(self) -> float:
        """Energy attributed to packets (i.e. to apps)."""
        return float(self.per_packet.sum())

    @property
    def total_energy(self) -> float:
        """Attributed plus idle energy: the whole radio's consumption."""
        return self.attributed_energy + self.idle_energy

    def time_in_state(self, state: RadioState) -> float:
        """Total interval-log seconds spent in ``state``."""
        return sum(i.duration for i in self.intervals if i.state == state)


class RadioStateMachine:
    """Exact event-driven simulator for one :class:`RadioModel`."""

    def __init__(self, model: RadioModel) -> None:
        self.model = model

    def simulate(
        self,
        packets: PacketArray,
        window: Optional[Tuple[float, float]] = None,
        record_intervals: bool = True,
    ) -> SimulationResult:
        """Run the machine over a time-sorted packet array.

        Args:
            packets: Time-sorted packets (any apps; the machine models
                the single shared radio of the device).
            window: Observation window ``(start, end)``; defaults to the
                packet span. Must contain all packets.
            record_intervals: Skip building the interval log when False
                (large traces).
        """
        if not packets.is_time_sorted():
            raise TraceError("packets must be time-sorted")
        n = len(packets)
        ts = packets.timestamps
        if window is None:
            window = (float(ts[0]), float(ts[-1])) if n else (0.0, 0.0)
        w0, w1 = window
        if w1 < w0:
            raise ModelError(f"window end {w1} before start {w0}")
        if n and (ts[0] < w0 or ts[-1] > w1):
            raise TraceError("packets outside the simulation window")

        model = self.model
        transfer = np.zeros(n)
        tail = np.zeros(n)
        promotion = np.zeros(n)
        idle_energy = 0.0
        intervals: List[RadioInterval] = []

        def log_idle(start: float, end: float) -> None:
            if record_intervals and end > start:
                intervals.append(
                    RadioInterval(start, end, RadioState.IDLE, model.idle_power)
                )

        def log_promotion(at: float) -> None:
            if record_intervals and model.promotion_duration > 0:
                intervals.append(
                    RadioInterval(
                        max(at - model.promotion_duration, w0),
                        at,
                        RadioState.PROMOTION,
                        model.promotion_power,
                    )
                )

        def log_tail(start: float, on_time: float) -> None:
            if not record_intervals or on_time <= 0:
                return
            cursor = start
            remaining = on_time
            for phase_idx, phase in enumerate(model.tail_phases):
                spent = min(remaining, phase.duration)
                intervals.append(
                    RadioInterval(
                        cursor,
                        cursor + spent,
                        RadioState.TAIL,
                        phase.power,
                        phase=phase_idx,
                    )
                )
                cursor += spent
                remaining -= spent
                if remaining <= 0:
                    break

        if n == 0:
            log_idle(w0, w1)
            idle_energy = (w1 - w0) * model.idle_power
            return SimulationResult(
                model, window, transfer, tail, promotion, idle_energy, intervals
            )

        sizes = packets.sizes
        dirs = packets.directions
        tail_d = model.tail_duration

        # Idle lead-in before the first packet's promotion ramp.
        lead_idle = max(float(ts[0]) - model.promotion_duration - w0, 0.0)
        idle_energy += lead_idle * model.idle_power
        log_idle(w0, w0 + lead_idle)

        for i in range(n):
            t_i = float(ts[i])
            promoted = i == 0 or (t_i - float(ts[i - 1])) > tail_d
            if promoted:
                promotion[i] = model.promotion_energy
                log_promotion(t_i)
            transfer[i] = model.transfer_energy(
                int(sizes[i]), Direction(int(dirs[i]))
            )
            boundary = float(ts[i + 1]) if i + 1 < n else w1
            gap = boundary - t_i
            on_time = min(gap, tail_d)
            tail[i] = model.tail_energy(on_time)
            log_tail(t_i, on_time)
            if gap > tail_d:
                next_promo = model.promotion_duration if i + 1 < n else 0.0
                idle_time = max(gap - tail_d - next_promo, 0.0)
                idle_energy += idle_time * model.idle_power
                log_idle(t_i + on_time, t_i + on_time + idle_time)

        return SimulationResult(
            model, window, transfer, tail, promotion, idle_energy, intervals
        )
