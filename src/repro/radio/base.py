"""Generic parameterised radio power model.

All three technologies (LTE, 3G/UMTS, WiFi) share one abstract shape:

* an **idle** state drawing a small baseline power;
* a **promotion** ramp of fixed duration and power entering the
  high-power state when a packet arrives while idle;
* a **tail**: after the last packet of a burst the radio stays in one or
  more progressively cheaper high-power phases (LTE continuous-reception
  then DRX; UMTS DCH then FACH; WiFi PSM beacon wait) before demoting to
  idle;
* **transfer energy** linear in bytes, with direction-dependent
  coefficients derived from the published throughput-linear power curves
  (power = alpha * throughput + beta  =>  energy/bit = alpha + beta/rate).

This single parameterisation reproduces each published model by choosing
its constants, so the energy engines and all analyses are written once.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Tuple

import numpy as np

from repro.errors import ModelError
from repro.trace.packet import Direction


@dataclass(frozen=True)
class TailPhase:
    """One constant-power phase of the post-transfer tail."""

    duration: float
    power: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ModelError(f"tail phase duration must be positive: {self.duration}")
        if self.power < 0:
            raise ModelError(f"tail phase power must be non-negative: {self.power}")


class RadioState(Enum):
    """Coarse radio states used in interval logs."""

    IDLE = "idle"
    PROMOTION = "promotion"
    TAIL = "tail"


@dataclass(frozen=True)
class RadioInterval:
    """A constant-power interval of the simulated radio timeline."""

    start: float
    end: float
    state: RadioState
    power: float
    phase: int = 0  # tail phase index, 0 for non-tail states

    @property
    def duration(self) -> float:
        """Interval length in seconds."""
        return self.end - self.start

    @property
    def energy(self) -> float:
        """Energy of the interval in joules."""
        return self.duration * self.power


@dataclass(frozen=True)
class RadioModel:
    """A concrete radio technology's power model.

    Attributes:
        name: Human-readable model name (``"lte"``, ``"umts"``, ...).
        idle_power: Baseline power while demoted, watts.
        promotion_duration: Idle -> connected ramp length, seconds.
        promotion_power: Power during the ramp, watts.
        tail_phases: Post-burst high-power phases, in order.
        energy_per_byte_up: Transfer energy per uplink byte, joules.
        energy_per_byte_down: Transfer energy per downlink byte, joules.
    """

    name: str
    idle_power: float
    promotion_duration: float
    promotion_power: float
    tail_phases: Tuple[TailPhase, ...]
    energy_per_byte_up: float
    energy_per_byte_down: float

    def __post_init__(self) -> None:
        if self.idle_power < 0 or self.promotion_power < 0:
            raise ModelError("powers must be non-negative")
        if self.promotion_duration < 0:
            raise ModelError("promotion duration must be non-negative")
        if not self.tail_phases:
            raise ModelError("at least one tail phase is required")
        if self.energy_per_byte_up < 0 or self.energy_per_byte_down < 0:
            raise ModelError("per-byte energies must be non-negative")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def tail_duration(self) -> float:
        """Total tail length before demotion to idle, seconds."""
        return sum(p.duration for p in self.tail_phases)

    @property
    def promotion_energy(self) -> float:
        """Energy of one idle -> connected promotion, joules."""
        return self.promotion_duration * self.promotion_power

    @property
    def full_tail_energy(self) -> float:
        """Energy of one complete, uninterrupted tail, joules."""
        return sum(p.duration * p.power for p in self.tail_phases)

    def tail_energy(self, on_time: float) -> float:
        """Energy of the first ``on_time`` seconds of the tail profile.

        ``on_time`` beyond the tail duration contributes nothing extra
        (the radio has demoted; idle energy is accounted separately).
        """
        if on_time <= 0:
            return 0.0
        energy = 0.0
        remaining = on_time
        for phase in self.tail_phases:
            spent = min(remaining, phase.duration)
            energy += spent * phase.power
            remaining -= spent
            if remaining <= 0:
                break
        return energy

    def tail_energy_vector(self, on_times: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`tail_energy` over an array of on-times."""
        energy = np.zeros_like(on_times, dtype=np.float64)
        elapsed = 0.0
        for phase in self.tail_phases:
            in_phase = np.clip(on_times - elapsed, 0.0, phase.duration)
            energy += in_phase * phase.power
            elapsed += phase.duration
        return energy

    def energy_per_byte(self, direction: Direction) -> float:
        """Per-byte transfer energy for ``direction``, joules."""
        if direction == Direction.UPLINK:
            return self.energy_per_byte_up
        return self.energy_per_byte_down

    def transfer_energy(self, size: int, direction: Direction) -> float:
        """Transfer energy of one packet, joules."""
        if size < 0:
            raise ModelError(f"packet size must be non-negative: {size}")
        return size * self.energy_per_byte(direction)

    def burst_energy(self, size: int, direction: Direction) -> float:
        """Energy of one isolated burst: promotion + transfer + full tail.

        The cost the paper calls "disproportionate" for small periodic
        transfers — dominated by the tail, nearly independent of size.
        """
        return (
            self.promotion_energy
            + self.transfer_energy(size, direction)
            + self.full_tail_energy
        )


def energy_per_byte_from_throughput_curve(
    alpha_mw_per_mbps: float,
    beta_mw: float,
    rate_mbps: float,
) -> float:
    """Derive J/byte from a published power curve ``P = alpha*tput + beta``.

    With power in mW, throughput in Mbps and a nominal link rate
    ``rate_mbps``, one byte occupies the link for ``8 / (rate * 1e6)``
    seconds, giving ``energy/byte = (alpha*rate + beta) * 1e-3 * 8 /
    (rate * 1e6)`` joules.
    """
    if rate_mbps <= 0:
        raise ModelError(f"link rate must be positive: {rate_mbps}")
    power_w = (alpha_mw_per_mbps * rate_mbps + beta_mw) * 1e-3
    seconds_per_byte = 8.0 / (rate_mbps * 1e6)
    return power_w * seconds_per_byte
