"""LTE power model with the published MobiSys'12 parameters.

Constants follow Huang et al., "A Close Examination of Performance and
Power Characteristics of 4G LTE Networks" (MobiSys 2012) — the model the
paper cites as [16] and validates with a Monsoon power monitor:

* idle (RRC_IDLE with paging)        ~ 11.4 mW
* promotion IDLE -> CONNECTED        260 ms at 1210.7 mW
* tail (DRX in RRC_CONNECTED)        11.576 s at ~1060 mW average
* uplink power    P = 438.39 mW/Mbps * tput + 1288.04 mW
* downlink power  P = 51.97 mW/Mbps * tput + 1288.04 mW

The tail can optionally be split into the continuous-reception phase and
the Short/Long DRX phases (``drx_detail=True``); the single-phase average
is what the tail-energy literature commonly uses and is the default.
"""

from __future__ import annotations

from repro.radio.base import (
    RadioModel,
    TailPhase,
    energy_per_byte_from_throughput_curve,
)
from repro.units import ms, mw

#: Published LTE constants (see module docstring).
IDLE_POWER_W = mw(11.4)
PROMOTION_DURATION_S = ms(260.0)
PROMOTION_POWER_W = mw(1210.7)
TAIL_DURATION_S = 11.576
TAIL_POWER_W = mw(1060.0)

ALPHA_UP_MW_PER_MBPS = 438.39
ALPHA_DOWN_MW_PER_MBPS = 51.97
BETA_MW = 1288.04

#: Nominal link rates used to convert the throughput-linear power curve
#: into per-byte energy. Chosen as typical 2013-era LTE rates; they are
#: calibration constants of the reproduction, not of the paper.
NOMINAL_UPLINK_MBPS = 5.0
NOMINAL_DOWNLINK_MBPS = 15.0

#: Detailed DRX tail: continuous reception, then Short DRX, then Long
#: DRX, with powers averaging to the published 1060 mW tail.
DRX_TAIL_PHASES = (
    TailPhase(duration=0.2, power=mw(1210.7)),   # continuous reception
    TailPhase(duration=1.28, power=mw(1160.0)),  # Short DRX
    TailPhase(duration=10.096, power=mw(1044.4)),  # Long DRX
)


def lte_model(
    drx_detail: bool = False,
    uplink_mbps: float = NOMINAL_UPLINK_MBPS,
    downlink_mbps: float = NOMINAL_DOWNLINK_MBPS,
) -> RadioModel:
    """Build the LTE power model.

    Args:
        drx_detail: Use the three-phase DRX tail instead of the
            single-phase average tail.
        uplink_mbps: Nominal uplink rate for the per-byte conversion.
        downlink_mbps: Nominal downlink rate for the per-byte conversion.
    """
    if drx_detail:
        tail = DRX_TAIL_PHASES
    else:
        tail = (TailPhase(TAIL_DURATION_S, TAIL_POWER_W),)
    return RadioModel(
        name="lte",
        idle_power=IDLE_POWER_W,
        promotion_duration=PROMOTION_DURATION_S,
        promotion_power=PROMOTION_POWER_W,
        tail_phases=tail,
        energy_per_byte_up=energy_per_byte_from_throughput_curve(
            ALPHA_UP_MW_PER_MBPS, BETA_MW, uplink_mbps
        ),
        energy_per_byte_down=energy_per_byte_from_throughput_curve(
            ALPHA_DOWN_MW_PER_MBPS, BETA_MW, downlink_mbps
        ),
    )


def lte_fast_dormancy_model(tail_duration: float = 3.0) -> RadioModel:
    """LTE with fast dormancy: the device requests demotion after
    ``tail_duration`` seconds instead of waiting out the network timer.

    Implements the paper's §6 recommendation ("radio-layer energy saving
    features such as fast dormancy [7]") as a model variant for the
    ablation benches.
    """
    base = lte_model()
    return RadioModel(
        name=f"lte-fd{tail_duration:g}",
        idle_power=base.idle_power,
        promotion_power=base.promotion_power,
        promotion_duration=base.promotion_duration,
        tail_phases=(TailPhase(tail_duration, TAIL_POWER_W),),
        energy_per_byte_up=base.energy_per_byte_up,
        energy_per_byte_down=base.energy_per_byte_down,
    )


#: The default model used throughout the library (single-phase tail).
LTE_DEFAULT = lte_model()
