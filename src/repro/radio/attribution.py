"""Per-app energy attribution.

The paper's rule (§3.1): *"we assign any tail energy to the last packet
sent during the tail period to avoid double-counting energy when there
are multiple concurrent flows. In this way, the total cellular network
energy consumed by each device is the sum of the energy assigned to each
app."* That rule is :attr:`TailPolicy.LAST_PACKET` and is the default
everywhere; :attr:`TailPolicy.SPLIT_ADJACENT` is an alternative used by
the ablation bench to show how sensitive per-app numbers are to the
attribution choice (totals are conserved under both).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Optional, Tuple

import numpy as np

from repro import faults
from repro.radio.base import RadioModel
from repro.radio.vectorized import (
    PacketEnergy,
    compute_packet_energy,
    packet_gaps,
    promotion_energy_vector,
    transfer_energy_vector,
)
from repro.trace.arrays import PacketArray


class TailPolicy(Enum):
    """How inter-packet radio-on (tail) energy is attributed."""

    #: Paper's rule: whole gap's tail energy to the packet before it.
    LAST_PACKET = "last-packet"
    #: Split each inner gap's tail energy between the packets on both
    #: sides (the trailing full tail still goes to the final packet).
    SPLIT_ADJACENT = "split-adjacent"


@dataclass
class AttributionResult:
    """Per-packet energies plus grouped views."""

    packets: PacketArray
    energy: PacketEnergy
    policy: TailPolicy
    tail: np.ndarray  # policy-adjusted tail energy per packet

    @property
    def per_packet(self) -> np.ndarray:
        """Total energy attributed to each packet under the policy."""
        return self.energy.transfer + self.energy.promotion + self.tail

    @property
    def attributed_energy(self) -> float:
        """Total attributed (per-app) energy."""
        return float(self.per_packet.sum())

    @property
    def total_energy(self) -> float:
        """Attributed plus idle energy."""
        return self.attributed_energy + self.energy.idle_energy

    def _group_sum(self, keys: np.ndarray) -> Dict[int, float]:
        if len(keys) == 0:
            return {}
        unique, inverse = np.unique(keys, return_inverse=True)
        sums = np.bincount(inverse, weights=self.per_packet)
        return {int(k): float(s) for k, s in zip(unique, sums)}

    def energy_by_app(self) -> Dict[int, float]:
        """Joules attributed to each app id."""
        return self._group_sum(self.packets.apps)

    def energy_by_flow(self) -> Dict[int, float]:
        """Joules attributed to each flow id (0 = unreconstructed)."""
        return self._group_sum(self.packets.flows)

    def energy_by_app_state(self) -> Dict[Tuple[int, int], float]:
        """Joules per (app id, process-state value) pair.

        Requires packets to have been state-labelled first.
        """
        apps = self.packets.apps.astype(np.int64)
        states = self.packets.states.astype(np.int64)
        if len(apps) == 0:
            return {}
        combined = apps * 256 + states
        unique, inverse = np.unique(combined, return_inverse=True)
        sums = np.bincount(inverse, weights=self.per_packet)
        return {
            (int(k) // 256, int(k) % 256): float(s)
            for k, s in zip(unique, sums)
        }

    def energy_in_range(self, start: float, end: float) -> float:
        """Attributed joules for packets in ``[start, end)``."""
        ts = self.packets.timestamps
        mask = (ts >= start) & (ts < end)
        return float(self.per_packet[mask].sum())


def _apply_tail_policy(
    tail: np.ndarray, policy: TailPolicy
) -> np.ndarray:
    if policy == TailPolicy.LAST_PACKET or len(tail) < 2:
        return tail
    adjusted = tail.astype(np.float64).copy()
    inner = adjusted[:-1] * 0.5
    adjusted[:-1] -= inner
    adjusted[1:] += inner
    return adjusted


def attribute_energy(
    model: RadioModel,
    packets: PacketArray,
    window: Optional[Tuple[float, float]] = None,
    policy: TailPolicy = TailPolicy.LAST_PACKET,
) -> AttributionResult:
    """Compute and attribute radio energy for one device timeline.

    ``packets`` must be the *merged* timeline of every app on the device:
    the radio is shared, so gaps — and therefore tails — only make sense
    device-wide. Per-app energies fall out of the per-packet attribution.
    """
    energy = compute_packet_energy(model, packets, window)
    tail = _apply_tail_policy(energy.tail, policy)
    return AttributionResult(packets, energy, policy, tail)


# ----------------------------------------------------------------------
# Process-pool / on-disk boundary
# ----------------------------------------------------------------------
# An AttributionResult drags its PacketArray along, but both the worker
# pool and the disk cache already have the packets on the other side of
# the boundary — so only the tail array crosses it. Transfer and
# promotion energies are each a single cheap vectorised pass over the
# packets and are recomputed on receipt (same expressions as the
# engine, so bit-identical); the multi-phase tail profile is the part
# worth shipping/persisting. The policy-adjusted tail is likewise
# rebuilt from the raw tail, so a tail/policy mismatch cannot occur.

def result_payload(result: AttributionResult) -> Dict[str, object]:
    """The expensive-to-recompute parts of ``result``, packet-free."""
    return {
        "tail": result.energy.tail,
        "idle_energy": result.energy.idle_energy,
        "window": result.energy.window,
    }


def result_from_payload(
    model: RadioModel,
    packets: PacketArray,
    policy: TailPolicy,
    payload: Dict[str, object],
) -> AttributionResult:
    """Rebuild an :class:`AttributionResult` from :func:`result_payload`."""
    window = (float(payload["window"][0]), float(payload["window"][1]))
    raw_tail = np.asarray(payload["tail"], dtype=np.float64)
    if len(packets):
        ts = packets.timestamps.astype(np.float64)
        transfer = transfer_energy_vector(model, packets)
        promotion = promotion_energy_vector(model, packet_gaps(ts, window[1]))
    else:
        transfer = np.zeros(0)
        promotion = np.zeros(0)
    energy = PacketEnergy(
        model, window, transfer, raw_tail, promotion,
        float(payload["idle_energy"]),
    )
    tail = _apply_tail_policy(energy.tail, policy)
    return AttributionResult(packets, energy, policy, tail)


class AttributionTask:
    """Picklable per-user attribution task for worker pools.

    Holds the (model, policy) configuration plus the ``(packets,
    window)`` of every user it may attribute; each call takes a bare
    user id and returns ``(user_id, payload)`` with the payload of
    :func:`result_payload`. Keeping the bulky packet arrays on the task
    and only ids in the item stream lets a ``fork`` pool inherit the
    packets copy-on-write instead of pickling them per job (see
    :func:`repro.parallel.map_tasks`); only the computed tail array
    ships back.
    """

    def __init__(
        self,
        model: RadioModel,
        policy: TailPolicy,
        traces: Dict[int, Tuple[PacketArray, Tuple[float, float]]],
    ) -> None:
        self.model = model
        self.policy = policy
        self.traces = traces

    def __call__(self, user_id: int) -> Tuple[int, Dict[str, object]]:
        # Fault site for chaos tests: attribution is pure, so a retried
        # call lands on identical numbers.
        faults.fire("attribute.task")
        packets, window = self.traces[user_id]
        result = attribute_energy(
            self.model, packets, window=window, policy=self.policy
        )
        return user_id, result_payload(result)
