"""Resumable, chunk-at-a-time radio simulation.

:class:`StreamingAttribution` consumes one device's time-ordered packet
stream in bounded chunks and emits, for every packet whose radio fate
is settled, the exact energy the batch engine
(:func:`~repro.radio.vectorized.compute_packet_energy` +
:func:`~repro.radio.attribution.attribute_energy`) would attribute to
it — bit for bit, for any chunk size.

The trick is that only one packet is ever undecided: a packet's
transfer and promotion energy are fixed the moment it arrives (they
depend on the gap *before* it), while its tail energy depends on the
gap *after* it. So the carry between chunks — :class:`RadioCarry` — is
a single pending packet plus a handful of accumulators:

* the pending packet's timestamp, app, state, transfer and promotion;
* half the raw tail of the packet before it (what
  :attr:`~repro.radio.attribution.TailPolicy.SPLIT_ADJACENT` shifts
  forward across the boundary);
* the idle-time accumulator, buffered to the same absolute
  :data:`~repro.radio.vectorized.SUM_BLOCK` boundaries the batch
  engine's :func:`~repro.radio.vectorized.blocked_sum` uses, so the
  float additions happen in the identical order.

The carry serialises to a small payload of plain numpy arrays
(:meth:`RadioCarry.to_payload`), which is what
:class:`repro.stream.StreamCheckpoint` persists: kill the process,
reload the payload, keep feeding — the numbers cannot drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import StreamError, TraceError
from repro.radio.attribution import TailPolicy
from repro.radio.base import RadioModel
from repro.radio.vectorized import (
    SUM_BLOCK,
    transfer_energy_vector,
)
from repro.trace.arrays import PacketArray

_EMPTY_F8 = np.empty(0, dtype=np.float64)


@dataclass
class RadioCarry:
    """Everything the radio simulation needs across a chunk boundary."""

    #: Simulation window ``(w0, w1)`` — the batch engine's ``window``.
    window: Tuple[float, float]
    #: Packets consumed so far (including the pending one).
    n_packets: int = 0
    #: The pending (last-seen) packet, tail still open.
    pending_ts: float = 0.0
    pending_app: int = 0
    pending_state: int = 0
    pending_size: int = 0
    pending_transfer: float = 0.0
    pending_promotion: float = 0.0
    #: Half the raw tail of the packet before the pending one (what
    #: ``SPLIT_ADJACENT`` adds to the pending packet when it settles).
    prev_half_tail: float = 0.0
    #: ``max(ts0 - promotion_duration - w0, 0)`` — fixed by packet one.
    lead_in_idle: float = 0.0
    #: Completed-block part of the inner-gap idle time (blocked_sum fold).
    idle_acc: float = 0.0
    #: Inner-gap idle values of the current, incomplete block.
    idle_buffer: np.ndarray = field(default_factory=lambda: _EMPTY_F8.copy())

    def to_payload(self) -> Dict[str, np.ndarray]:
        """A picklable / npz-storable form; floats stay binary-exact."""
        return {
            "floats": np.array(
                [
                    self.window[0],
                    self.window[1],
                    self.pending_ts,
                    self.pending_transfer,
                    self.pending_promotion,
                    self.prev_half_tail,
                    self.lead_in_idle,
                    self.idle_acc,
                ],
                dtype=np.float64,
            ),
            "ints": np.array(
                [
                    self.n_packets,
                    self.pending_app,
                    self.pending_state,
                    self.pending_size,
                ],
                dtype=np.int64,
            ),
            "idle_buffer": np.asarray(self.idle_buffer, dtype=np.float64),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, np.ndarray]) -> "RadioCarry":
        """Rebuild a carry from :meth:`to_payload` output."""
        floats = np.asarray(payload["floats"], dtype=np.float64)
        ints = np.asarray(payload["ints"], dtype=np.int64)
        return cls(
            window=(float(floats[0]), float(floats[1])),
            n_packets=int(ints[0]),
            pending_ts=float(floats[2]),
            pending_app=int(ints[1]),
            pending_state=int(ints[2]),
            pending_size=int(ints[3]),
            pending_transfer=float(floats[3]),
            pending_promotion=float(floats[4]),
            prev_half_tail=float(floats[5]),
            lead_in_idle=float(floats[6]),
            idle_acc=float(floats[7]),
            idle_buffer=np.asarray(payload["idle_buffer"], dtype=np.float64),
        )


@dataclass
class FinalizedChunk:
    """Per-packet attribution of the packets settled by one feed."""

    apps: np.ndarray  # app ids, int64
    states: np.ndarray  # process-state labels, int64
    sizes: np.ndarray  # packet sizes, int64
    per_packet: np.ndarray  # attributed joules under the policy, float64

    def __len__(self) -> int:
        return len(self.per_packet)

    @classmethod
    def empty(cls) -> "FinalizedChunk":
        return cls(
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            _EMPTY_F8.copy(),
        )


class StreamingAttribution:
    """Incremental :func:`~repro.radio.attribution.attribute_energy`.

    Feed time-ordered packet chunks with :meth:`feed`; each call returns
    the packets it settled (everything up to, not including, the new
    pending packet). :meth:`finish` settles the pending packet against
    the window end and returns the unattributed idle energy. The
    concatenation of every :class:`FinalizedChunk` is bit-identical —
    value by value — to the batch engine's policy-adjusted per-packet
    attribution over the whole trace, and the finished idle energy is
    bit-identical to its ``idle_energy``, for any chunk sizes.

    Args:
        model: Radio power model.
        policy: Tail-energy attribution rule.
        window: Simulation window ``(w0, w1)``; must equal the batch
            trace window for identity.
        carry: Resume from a previous run's :class:`RadioCarry`
            (default: start fresh).
    """

    def __init__(
        self,
        model: RadioModel,
        policy: TailPolicy,
        window: Tuple[float, float],
        carry: Optional[RadioCarry] = None,
    ) -> None:
        if window[1] < window[0]:
            raise StreamError(
                f"window end {window[1]} before start {window[0]}"
            )
        if carry is not None and tuple(carry.window) != tuple(window):
            raise StreamError(
                f"carry window {carry.window} does not match {window}"
            )
        self.model = model
        self.policy = policy
        self.window = (float(window[0]), float(window[1]))
        self.carry = carry if carry is not None else RadioCarry(self.window)
        self._finished = False

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    def feed(self, chunk: PacketArray) -> FinalizedChunk:
        """Consume one time-ordered chunk; return the packets it settled.

        An empty chunk is a no-op. The first packet of the chunk settles
        the carried pending packet; the chunk's own last packet becomes
        the new pending one.
        """
        if self._finished:
            raise StreamError("feed() after finish()")
        k = len(chunk)
        if k == 0:
            return FinalizedChunk.empty()
        if not chunk.is_time_sorted():
            raise StreamError("chunk packets must be time-sorted")
        carry = self.carry
        ts = chunk.timestamps.astype(np.float64)
        w0, w1 = self.window
        if ts[0] < w0 or ts[-1] > w1:
            raise TraceError("packets outside the simulation window")
        if carry.n_packets and ts[0] < carry.pending_ts:
            raise StreamError(
                f"chunk starts at {ts[0]} before pending packet at "
                f"{carry.pending_ts}"
            )

        model = self.model
        tail_d = model.tail_duration
        transfer = transfer_energy_vector(model, chunk)
        apps = chunk.apps.astype(np.int64)
        states = chunk.states.astype(np.int64)
        sizes = chunk.sizes.astype(np.int64)

        if carry.n_packets == 0:
            # First packets of the stream: fix the pre-trace idle lead-in
            # and promote packet one, exactly as the batch engine does.
            carry.lead_in_idle = max(
                float(ts[0]) - model.promotion_duration - w0, 0.0
            )
            diffs = np.diff(ts)
            promotion = np.empty(k, dtype=np.float64)
            promotion[0] = model.promotion_energy
            promotion[1:] = np.where(diffs > tail_d, model.promotion_energy, 0.0)
            ext_ts = ts
            ext_transfer = transfer
            ext_promotion = promotion
            ext_apps, ext_states, ext_sizes = apps, states, sizes
        else:
            ext_ts = np.concatenate(([carry.pending_ts], ts))
            diffs = np.diff(ext_ts)
            promotion = np.where(
                diffs > tail_d, model.promotion_energy, 0.0
            )
            ext_transfer = np.concatenate(([carry.pending_transfer], transfer))
            ext_promotion = np.concatenate(
                ([carry.pending_promotion], promotion)
            )
            ext_apps = np.concatenate(([carry.pending_app], apps))
            ext_states = np.concatenate(([carry.pending_state], states))
            ext_sizes = np.concatenate(([carry.pending_size], sizes))

        # ``diffs`` are the gaps after each settled packet — the batch
        # engine's ``gaps[:-1]`` restricted to this chunk's span.
        on_times = np.minimum(diffs, tail_d)
        raw_tail = model.tail_energy_vector(on_times)
        idle_inner = np.clip(
            diffs - tail_d - model.promotion_duration, 0.0, None
        )
        self._push_idle(idle_inner)

        if self.policy == TailPolicy.SPLIT_ADJACENT:
            half = raw_tail * 0.5
            adjusted = raw_tail - half
            if len(half):
                prev_half = np.empty_like(half)
                prev_half[0] = carry.prev_half_tail
                prev_half[1:] = half[:-1]
                adjusted = adjusted + prev_half
                carry.prev_half_tail = float(half[-1])
        else:
            adjusted = raw_tail

        settled = FinalizedChunk(
            ext_apps[:-1],
            ext_states[:-1],
            ext_sizes[:-1],
            (ext_transfer[:-1] + ext_promotion[:-1]) + adjusted,
        )

        carry.n_packets += k
        carry.pending_ts = float(ext_ts[-1])
        carry.pending_app = int(ext_apps[-1])
        carry.pending_state = int(ext_states[-1])
        carry.pending_size = int(ext_sizes[-1])
        carry.pending_transfer = float(ext_transfer[-1])
        carry.pending_promotion = float(ext_promotion[-1])
        return settled

    def finish(self) -> Tuple[FinalizedChunk, float]:
        """Settle the pending packet against the window end.

        Returns ``(last settled packet(s), idle_energy)``; idle energy
        is the batch engine's unattributed idle floor, bit-identical.
        """
        if self._finished:
            raise StreamError("finish() called twice")
        self._finished = True
        carry = self.carry
        model = self.model
        w0, w1 = self.window
        if carry.n_packets == 0:
            return FinalizedChunk.empty(), (w1 - w0) * model.idle_power

        tail_d = model.tail_duration
        trailing_gap = w1 - carry.pending_ts
        raw_tail = model.tail_energy_vector(
            np.minimum(np.array([trailing_gap]), tail_d)
        )
        if self.policy == TailPolicy.SPLIT_ADJACENT and carry.n_packets >= 2:
            # The batch pass never halves the last packet's own tail; it
            # only receives the forward half of its predecessor's.
            adjusted = raw_tail + carry.prev_half_tail
        else:
            adjusted = raw_tail

        settled = FinalizedChunk(
            np.array([carry.pending_app], dtype=np.int64),
            np.array([carry.pending_state], dtype=np.int64),
            np.array([carry.pending_size], dtype=np.int64),
            (
                np.array([carry.pending_transfer])
                + np.array([carry.pending_promotion])
            )
            + adjusted,
        )

        idle_acc = carry.idle_acc
        if len(carry.idle_buffer):
            idle_acc += float(carry.idle_buffer.sum())
            carry.idle_buffer = _EMPTY_F8.copy()
        carry.idle_acc = idle_acc
        idle_time = carry.lead_in_idle + idle_acc
        idle_time += max(trailing_gap - tail_d, 0.0)
        return settled, idle_time * model.idle_power

    @property
    def finished(self) -> bool:
        """True once :meth:`finish` has run."""
        return self._finished

    # ------------------------------------------------------------------
    # Idle accumulation
    # ------------------------------------------------------------------
    def _push_idle(self, values: np.ndarray) -> None:
        """Fold inner-gap idle values at absolute SUM_BLOCK boundaries.

        The buffer always starts at a block boundary of the whole
        stream's idle-gap sequence, so every ``float(block.sum())``
        here sums exactly the values the batch engine's
        :func:`~repro.radio.vectorized.blocked_sum` sums, in order.
        """
        carry = self.carry
        buffer = (
            np.concatenate([carry.idle_buffer, values])
            if len(carry.idle_buffer)
            else np.asarray(values, dtype=np.float64)
        )
        while len(buffer) >= SUM_BLOCK:
            carry.idle_acc += float(buffer[:SUM_BLOCK].sum())
            buffer = buffer[SUM_BLOCK:]
        carry.idle_buffer = np.ascontiguousarray(buffer, dtype=np.float64)
