"""5G NR power model with CDRX sleep states.

The paper predates 5G; this model extends its per-radio comparison the
same way the UMTS/WiFi modules do, with constants drawn from the 5G
measurement literature (Narayanan et al., "A variegated look at 5G in
the wild", IMC 2021; 3GPP TS 38.321 CDRX):

* idle (RRC_IDLE with paging)        ~ 20 mW — 5G modems idle deeper
  than LTE's always-on baseline but page more often.
* promotion IDLE -> CONNECTED        110 ms at 1530 mW — RRC setup is
  faster than LTE's 260 ms but burns more instantaneous power.
* tail: Connected-mode DRX (CDRX) steps the modem down through three
  sleep states instead of LTE's flat tail — 10 s total, front-loaded:

  - inactivity timer, continuous reception  100 ms at 1750 mW
  - Short CDRX cycles                       2.9 s at 1210 mW
  - Long CDRX light sleep                   7.0 s at 640 mW

* uplink power    P = 240 mW/Mbps * tput + 1580 mW
* downlink power  P = 7.6 mW/Mbps * tput + 1580 mW

The higher base power is offset by far higher nominal link rates, so
per-byte transfer energy is well below LTE while tails and promotions
stay expensive — the regime where counterfactual scheduling policies
(batching, coalescing) matter most.
"""

from __future__ import annotations

from repro.radio.base import (
    RadioModel,
    TailPhase,
    energy_per_byte_from_throughput_curve,
)
from repro.units import ms, mw

#: NR constants (see module docstring).
IDLE_POWER_W = mw(20.0)
PROMOTION_DURATION_S = ms(110.0)
PROMOTION_POWER_W = mw(1530.0)

#: CDRX tail: inactivity timer, Short CDRX, then Long CDRX light sleep.
CDRX_TAIL_PHASES = (
    TailPhase(duration=0.1, power=mw(1750.0)),  # continuous reception
    TailPhase(duration=2.9, power=mw(1210.0)),  # Short CDRX
    TailPhase(duration=7.0, power=mw(640.0)),   # Long CDRX light sleep
)

ALPHA_UP_MW_PER_MBPS = 240.0
ALPHA_DOWN_MW_PER_MBPS = 7.6
BETA_MW = 1580.0

#: Nominal link rates for the per-byte conversion — mid-band (sub-6)
#: NR; calibration constants of the reproduction, like LTE's.
NOMINAL_UPLINK_MBPS = 40.0
NOMINAL_DOWNLINK_MBPS = 250.0


def nr_model(
    uplink_mbps: float = NOMINAL_UPLINK_MBPS,
    downlink_mbps: float = NOMINAL_DOWNLINK_MBPS,
) -> RadioModel:
    """Build the 5G NR power model.

    Args:
        uplink_mbps: Nominal uplink rate for the per-byte conversion.
        downlink_mbps: Nominal downlink rate for the per-byte conversion.
    """
    return RadioModel(
        name="nr",
        idle_power=IDLE_POWER_W,
        promotion_duration=PROMOTION_DURATION_S,
        promotion_power=PROMOTION_POWER_W,
        tail_phases=CDRX_TAIL_PHASES,
        energy_per_byte_up=energy_per_byte_from_throughput_curve(
            ALPHA_UP_MW_PER_MBPS, BETA_MW, uplink_mbps
        ),
        energy_per_byte_down=energy_per_byte_from_throughput_curve(
            ALPHA_DOWN_MW_PER_MBPS, BETA_MW, downlink_mbps
        ),
    )


#: The default NR model (three-phase CDRX tail).
NR_DEFAULT = nr_model()
