"""Foreground -> background transition analyses (§4.1, Figs 4-6).

The section's new finding is that foreground-initiated traffic often
fails to stop when an app is backgrounded. Three views quantify it:

* :func:`trace_timeline` -- one transition's packet timeline (Fig 4);
* :func:`persistence_durations` -- per-transition duration that traffic
  keeps flowing afterwards (Fig 5's CDF; heavy-tailed, sometimes >1 day);
* :func:`bytes_since_foreground` -- total background bytes as a
  function of time since leaving the foreground (Fig 6: a heavy first
  minute, periodic spikes at 5/10 minutes, and a long tail);
* :func:`first_minute_fractions` -- the per-app share of background
  bytes landing within 60 s of backgrounding, behind the "84% of apps"
  headline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.readout import require_packet_detail
from repro.errors import AnalysisError
from repro.trace.dataset import Dataset
from repro.trace.intervals import BackgroundTransition
from repro.trace.trace import UserTrace
from repro.units import MINUTE

#: Default silence that ends a "traffic still flowing" episode (Fig 5).
DEFAULT_SILENCE_GAP = 10 * MINUTE


@dataclass(frozen=True)
class PersistenceSample:
    """One background transition and how long traffic persisted after it."""

    user_id: int
    app: str
    start: float
    duration: float
    bytes: int


@dataclass(frozen=True)
class TransitionStats:
    """Summary of one app's transition behaviour."""

    app: str
    transitions: int
    median_persistence: float
    p90_persistence: float
    max_persistence: float

    @classmethod
    def from_samples(
        cls, app: str, samples: List[PersistenceSample]
    ) -> "TransitionStats":
        """Aggregate one app's persistence samples."""
        durations = np.array([s.duration for s in samples]) if samples else np.zeros(1)
        return cls(
            app=app,
            transitions=len(samples),
            median_persistence=float(np.median(durations)),
            p90_persistence=float(np.percentile(durations, 90)),
            max_persistence=float(durations.max()),
        )


def _episode_spans(
    trace: UserTrace, app_id: int
) -> Tuple[BackgroundTransition, ...]:
    return trace.index().background_episodes(app_id)


def _app_packet_times(trace: UserTrace, app_id: int) -> Tuple[np.ndarray, np.ndarray]:
    packets = trace.index().app_packets(app_id)
    return packets.timestamps, packets.sizes.astype(np.int64)


def persistence_durations(
    dataset: Dataset,
    app: Optional[str] = None,
    silence_gap: float = DEFAULT_SILENCE_GAP,
    include_silent: bool = True,
) -> List[PersistenceSample]:
    """Fig 5: how long traffic continues after each backgrounding.

    For every foreground -> background transition, the persistence
    duration is the time from the transition to the last packet of the
    episode's leading *continuous* traffic run — the run ends at the
    first silence longer than ``silence_gap``. Transitions with no
    subsequent traffic yield zero-duration samples unless
    ``include_silent`` is false.
    """
    require_packet_detail(dataset, "persistence_durations")
    registry = dataset.registry
    if app is not None:
        app_ids = [registry.id_of(app)]
    else:
        app_ids = None
    samples: List[PersistenceSample] = []
    for trace in dataset:
        candidates = app_ids if app_ids is not None else trace.app_ids()
        for app_id in candidates:
            ts, sizes = _app_packet_times(trace, app_id)
            if len(ts) == 0 and not include_silent:
                continue
            name = registry.name_of(app_id)
            for episode in _episode_spans(trace, app_id):
                lo = np.searchsorted(ts, episode.start, side="left")
                hi = np.searchsorted(ts, episode.end, side="left")
                ep_ts = ts[lo:hi]
                if len(ep_ts) == 0:
                    if include_silent:
                        samples.append(
                            PersistenceSample(trace.user_id, name, episode.start, 0.0, 0)
                        )
                    continue
                gaps = np.diff(np.concatenate([[episode.start], ep_ts]))
                breaks = np.flatnonzero(gaps > silence_gap)
                last = (breaks[0] - 1) if len(breaks) else (len(ep_ts) - 1)
                if last < 0:
                    duration, volume = 0.0, 0
                else:
                    duration = float(ep_ts[last] - episode.start)
                    volume = int(sizes[lo : lo + last + 1].sum())
                samples.append(
                    PersistenceSample(
                        trace.user_id, name, episode.start, duration, volume
                    )
                )
    return samples


def persistence_cdf(
    samples: Iterable[PersistenceSample],
) -> Tuple[np.ndarray, np.ndarray]:
    """(sorted durations, cumulative fraction) for plotting Fig 5."""
    durations = np.sort(np.array([s.duration for s in samples]))
    if len(durations) == 0:
        raise AnalysisError("no persistence samples to build a CDF from")
    fractions = np.arange(1, len(durations) + 1) / len(durations)
    return durations, fractions


def bytes_since_foreground(
    dataset: Dataset,
    bin_seconds: float = 10.0,
    horizon: float = 120 * MINUTE,
    apps: Optional[Iterable[str]] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Fig 6: background bytes by time since leaving the foreground.

    Returns ``(bin_left_edges, byte_totals)``: every background-episode
    packet's offset from its episode's transition, binned at
    ``bin_seconds`` up to ``horizon``, summed over apps and users.
    """
    require_packet_detail(dataset, "bytes_since_foreground")
    if bin_seconds <= 0:
        raise AnalysisError(f"bin_seconds must be positive: {bin_seconds}")
    n_bins = int(np.ceil(horizon / bin_seconds))
    totals = np.zeros(n_bins)
    registry = dataset.registry
    app_ids = [registry.id_of(a) for a in apps] if apps is not None else None
    for trace in dataset:
        candidates = app_ids if app_ids is not None else trace.app_ids()
        for app_id in candidates:
            ts, sizes = _app_packet_times(trace, app_id)
            if len(ts) == 0:
                continue
            for episode in _episode_spans(trace, app_id):
                lo = np.searchsorted(ts, episode.start, side="left")
                hi = np.searchsorted(ts, min(episode.end, episode.start + horizon))
                if hi <= lo:
                    continue
                offsets = ts[lo:hi] - episode.start
                bins = (offsets // bin_seconds).astype(np.int64)
                np.add.at(totals, np.clip(bins, 0, n_bins - 1), sizes[lo:hi])
    edges = np.arange(n_bins) * bin_seconds
    return edges, totals


def first_minute_fractions(
    dataset: Dataset, window: float = 60.0
) -> Dict[str, float]:
    """Per-app fraction of background-episode bytes in the first minute.

    The §4.1 headline counts apps whose fraction is >= 0.8; apply
    :func:`fraction_of_apps_above` for that.
    """
    require_packet_detail(dataset, "first_minute_fractions")
    first: Dict[int, float] = {}
    total: Dict[int, float] = {}
    for trace in dataset:
        for app_id in trace.app_ids():
            ts, sizes = _app_packet_times(trace, app_id)
            for episode in _episode_spans(trace, app_id):
                lo = np.searchsorted(ts, episode.start, side="left")
                hi = np.searchsorted(ts, episode.end, side="left")
                if hi <= lo:
                    continue
                cut = np.searchsorted(ts, episode.start + window, side="left")
                cut = min(cut, hi)
                total[app_id] = total.get(app_id, 0.0) + float(sizes[lo:hi].sum())
                first[app_id] = first.get(app_id, 0.0) + float(sizes[lo:cut].sum())
    registry = dataset.registry
    return {
        registry.name_of(app_id): first.get(app_id, 0.0) / volume
        for app_id, volume in total.items()
        if volume > 0
    }


def fraction_of_apps_above(
    fractions: Dict[str, float], threshold: float = 0.8
) -> float:
    """Share of apps whose first-minute fraction is >= ``threshold``."""
    if not fractions:
        raise AnalysisError("no apps with background-episode traffic")
    hits = sum(1 for value in fractions.values() if value >= threshold)
    return hits / len(fractions)


@dataclass(frozen=True)
class TimelineView:
    """Packet timeline around one background transition (Fig 4)."""

    app: str
    user_id: int
    transition: float
    times: np.ndarray  # seconds relative to the transition
    sizes: np.ndarray
    directions: np.ndarray

    @property
    def background_bytes(self) -> int:
        """Bytes transferred after the transition."""
        return int(self.sizes[self.times >= 0].sum())

    @property
    def foreground_bytes(self) -> int:
        """Bytes transferred before the transition (shown for context)."""
        return int(self.sizes[self.times < 0].sum())


def trace_timeline(
    dataset: Dataset,
    app: str,
    before: float = 5 * MINUTE,
    after: float = 15 * MINUTE,
    min_background_packets: int = 5,
) -> TimelineView:
    """Fig 4: a representative transition where traffic keeps flowing.

    Picks, across all users, the transition of ``app`` with the most
    post-transition bytes (the paper shows a representative Chrome
    trace) and returns the packet timeline around it.
    """
    require_packet_detail(dataset, "trace_timeline")
    app_id = dataset.registry.id_of(app)
    best: Optional[Tuple[float, UserTrace, float]] = None  # (bytes, trace, t)
    for trace in dataset:
        ts, sizes = _app_packet_times(trace, app_id)
        for episode in _episode_spans(trace, app_id):
            lo = np.searchsorted(ts, episode.start, side="left")
            hi = np.searchsorted(ts, min(episode.end, episode.start + after))
            if hi - lo < min_background_packets:
                continue
            volume = float(sizes[lo:hi].sum())
            if best is None or volume > best[0]:
                best = (volume, trace, episode.start)
    if best is None:
        raise AnalysisError(
            f"no transition of {app!r} with >= {min_background_packets} "
            "background packets"
        )
    _, trace, transition = best
    packets = trace.index().app_packets(app_id)
    ts = packets.timestamps
    mask = (ts >= transition - before) & (ts < transition + after)
    return TimelineView(
        app=app,
        user_id=trace.user_id,
        transition=transition,
        times=ts[mask] - transition,
        sizes=packets.sizes[mask].astype(np.int64),
        directions=packets.directions[mask],
    )


def transition_stats_for(
    dataset: Dataset,
    apps: Iterable[str],
    silence_gap: float = DEFAULT_SILENCE_GAP,
) -> List[TransitionStats]:
    """Per-app persistence summaries (Fig 5 condensed to a table)."""
    out: List[TransitionStats] = []
    for app in apps:
        samples = persistence_durations(dataset, app=app, silence_gap=silence_gap)
        out.append(TransitionStats.from_samples(app, samples))
    return out
