"""Longitudinal trends (§3.1).

The paper examines how usage and app behaviour evolve over the 22
months: week-to-week background energy "fluctuated by up to 60%", and
"some apps have become more energy-efficient due to adjusting the
inter-packet intervals of background traffic" (Facebook 5 min -> 1 h,
Pandora 1 min -> 2 h, Maps' location service slowing down near the
end).

Two tools reproduce that analysis:

* :func:`weekly_background_energy` — the per-week background-energy
  series and its fluctuation statistics;
* :func:`era_comparison` — split the study into eras and compare an
  app's background update interval and energy rate between them,
  flagging apps that *improved* (interval grew, J/day fell).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.accounting import StudyEnergy
from repro.core.periodicity import UpdateFrequency, estimate_update_frequency
from repro.core.readout import require_packet_detail
from repro.errors import AnalysisError
from repro.units import DAY

#: Seconds per analysis week.
WEEK = 7 * DAY


@dataclass(frozen=True)
class WeeklySeries:
    """Per-week background energy across the study."""

    week_energy: Tuple[float, ...]  # joules per week, background states

    @property
    def n_weeks(self) -> int:
        """Number of (complete or partial) weeks covered."""
        return len(self.week_energy)

    @property
    def mean(self) -> float:
        """Mean weekly background energy."""
        return float(np.mean(self.week_energy)) if self.week_energy else 0.0

    @property
    def max_fluctuation(self) -> float:
        """Largest relative week-over-week change.

        The paper: "Background energy fluctuated by up to 60% from week
        to week throughout the study."
        """
        if len(self.week_energy) < 2:
            return 0.0
        values = np.array(self.week_energy)
        prev = values[:-1]
        with np.errstate(divide="ignore", invalid="ignore"):
            changes = np.where(prev > 0, np.abs(np.diff(values)) / prev, 0.0)
        return float(changes.max())


def weekly_background_energy(
    study: StudyEnergy, complete_weeks_only: bool = True
) -> WeeklySeries:
    """Background-state energy per study week, summed over users."""
    require_packet_detail(study, "weekly_background_energy")
    longest = max((t.end - t.start) for t in study.dataset)
    n_weeks = int(np.ceil(longest / WEEK))
    totals = np.zeros(n_weeks)
    for trace in study.dataset:
        result = study.user_result(trace.user_id)
        idx = study.index_for(trace.user_id).background_indices
        weeks = ((trace.packets.timestamps[idx] - trace.start) // WEEK).astype(
            np.int64
        )
        totals += np.bincount(
            np.clip(weeks, 0, n_weeks - 1),
            weights=result.per_packet[idx],
            minlength=n_weeks,
        )
    if complete_weeks_only and longest % WEEK > 0 and n_weeks > 1:
        totals = totals[:-1]
    return WeeklySeries(tuple(float(v) for v in totals))


@dataclass(frozen=True)
class EraStats:
    """One app's background behaviour within one era of the study."""

    start_fraction: float
    end_fraction: float
    joules_per_day: float
    bytes_per_day: float
    update_frequency: UpdateFrequency


@dataclass(frozen=True)
class EraComparison:
    """An app's background behaviour across study eras."""

    app: str
    eras: Tuple[EraStats, ...]

    @property
    def improved(self) -> bool:
        """True when the app got more energy-efficient over the study:
        its background update interval grew and its J/day fell."""
        if len(self.eras) < 2:
            return False
        first, last = self.eras[0], self.eras[-1]
        if first.joules_per_day <= 0:
            return False
        interval_grew = (
            last.update_frequency.median_interval
            > 1.5 * first.update_frequency.median_interval
            > 0
        )
        energy_fell = last.joules_per_day < 0.8 * first.joules_per_day
        return interval_grew and energy_fell

    @property
    def energy_change(self) -> float:
        """Relative J/day change from first to last era (-0.5 = halved)."""
        if len(self.eras) < 2 or self.eras[0].joules_per_day <= 0:
            return 0.0
        return (
            self.eras[-1].joules_per_day / self.eras[0].joules_per_day - 1.0
        )


def era_comparison(
    study: StudyEnergy,
    app: str,
    boundaries: Sequence[float] = (0.0, 0.5, 1.0),
) -> EraComparison:
    """Compare an app's background behaviour between study eras.

    Args:
        study: Precomputed study energy (state labels required).
        app: App name.
        boundaries: Era boundaries as fractions of the study; the
            default splits it in half, matching the catalog's evolution
            schedules.
    """
    require_packet_detail(study, "era_comparison")
    if len(boundaries) < 2 or sorted(boundaries) != list(boundaries):
        raise AnalysisError(f"boundaries must be ascending fractions: {boundaries}")
    app_id = study.dataset.registry.id_of(app)
    eras: List[EraStats] = []
    for lo_frac, hi_frac in zip(boundaries, boundaries[1:]):
        energy = 0.0
        volume = 0.0
        days = 0.0
        groups: List[np.ndarray] = []
        for trace in study.dataset:
            duration = trace.end - trace.start
            lo = trace.start + lo_frac * duration
            hi = trace.start + hi_frac * duration
            packets = trace.packets
            bg_idx = study.index_for(trace.user_id).app_background_indices(app_id)
            ts = packets.timestamps[bg_idx]
            idx = bg_idx[(ts >= lo) & (ts < hi)]
            if len(idx) == 0:
                continue
            result = study.user_result(trace.user_id)
            energy += float(result.per_packet[idx].sum())
            volume += float(packets.sizes[idx].sum())
            days += (hi - lo) / DAY
            groups.append(packets.timestamps[idx])
        eras.append(
            EraStats(
                start_fraction=lo_frac,
                end_fraction=hi_frac,
                joules_per_day=energy / days if days else 0.0,
                bytes_per_day=volume / days if days else 0.0,
                update_frequency=estimate_update_frequency(groups),
            )
        )
    return EraComparison(app=app, eras=tuple(eras))


def improved_apps(
    study: StudyEnergy,
    apps: Optional[Sequence[str]] = None,
    min_energy: float = 1000.0,
) -> Dict[str, EraComparison]:
    """Apps whose background behaviour improved over the study.

    Scans ``apps`` (default: every app with at least ``min_energy``
    joules attributed) and returns the comparisons flagged as improved —
    the paper's Facebook/Pandora/Go Weather pattern.
    """
    require_packet_detail(study, "improved_apps")
    registry = study.dataset.registry
    if apps is None:
        totals = study.energy_by_app()
        apps = [
            registry.name_of(app_id)
            for app_id, joules in totals.items()
            if joules >= min_energy
        ]
    out: Dict[str, EraComparison] = {}
    for app in apps:
        comparison = era_comparison(study, app)
        if comparison.improved:
            out[app] = comparison
    return out
