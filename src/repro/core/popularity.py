"""App popularity and top consumers (Figs 1 and 2).

Figure 1 ranks apps by how many users have them in their personal
top-10 list by total data consumption — a handful of apps (media
player, Facebook, Google Play) are near-universal while the rest of the
top-10 lists are diverse. Figure 2 lists the study-wide top data and
top energy consumers, which differ because tail energy decouples energy
from bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Union

from repro.core.readout import EnergyReadout
from repro.trace.dataset import Dataset
from repro.units import joules_per_megabyte


def top10_appearance_counts(
    source: Union[Dataset, EnergyReadout], top_n: int = 10, min_users: int = 2
) -> Dict[str, int]:
    """Fig 1: app name -> number of users with it in their top-N by bytes.

    Only apps appearing in at least ``min_users`` users' lists are
    returned (the paper's Fig 1 plots apps in >= 2 lists), sorted by
    count descending then name. Byte totals are exact integers, so a
    raw :class:`~repro.trace.dataset.Dataset` and any
    :class:`~repro.core.readout.EnergyReadout` produce the identical
    ranking.
    """
    counts: Dict[str, int] = {}
    if hasattr(source, "user_totals"):
        per_user = (
            (source.user_totals(uid).bytes_by_app(), source.app_name)
            for uid in source.user_ids
        )
    else:
        per_user = (
            (trace.index().bytes_by_app(), source.registry.name_of)
            for trace in source
        )
    for by_app, name_of in per_user:
        ranked = sorted(by_app, key=lambda app: by_app[app], reverse=True)[:top_n]
        for app_id in ranked:
            name = name_of(app_id)
            counts[name] = counts.get(name, 0) + 1
    filtered = {name: c for name, c in counts.items() if c >= min_users}
    return dict(sorted(filtered.items(), key=lambda kv: (-kv[1], kv[0])))


@dataclass(frozen=True)
class ConsumerRow:
    """One app's study-wide data and energy totals."""

    app: str
    category: str
    total_bytes: int
    total_energy: float

    @property
    def joules_per_mb(self) -> float:
        """Energy efficiency, J/MB."""
        return joules_per_megabyte(self.total_energy, self.total_bytes)


def top_consumers(
    study: EnergyReadout, n: int = 12, by: str = "energy"
) -> List[ConsumerRow]:
    """Fig 2: the top-``n`` apps by ``by`` in {"energy", "data"}.

    The two orderings differ in exactly the way Fig 2 shows: chatty
    small-transfer apps (default email) rank much higher by energy than
    by data; bulk movers (media server) the reverse.
    """
    if by not in ("energy", "data"):
        raise ValueError(f"by must be 'energy' or 'data', got {by!r}")
    energy = study.energy_by_app()
    volume = study.bytes_by_app()
    rows = [
        ConsumerRow(
            app=study.app_name(app_id),
            category=study.app_category(app_id),
            total_bytes=volume.get(app_id, 0),
            total_energy=energy.get(app_id, 0.0),
        )
        for app_id in set(energy) | set(volume)
    ]
    key = (lambda r: r.total_energy) if by == "energy" else (lambda r: r.total_bytes)
    rows.sort(key=key, reverse=True)
    return rows[:n]


def category_energy(study: EnergyReadout) -> Dict[str, float]:
    """Joules per app category, summed over apps and users.

    The category roll-up of Fig 2: which *kinds* of apps drain the
    radio (services and social apps dominate; media moves the bytes).
    """
    totals: Dict[str, float] = {}
    for app_id, joules in study.energy_by_app().items():
        category = study.app_category(app_id)
        totals[category] = totals.get(category, 0.0) + joules
    return dict(sorted(totals.items(), key=lambda kv: -kv[1]))
