"""Table 1: background-transfer case studies.

For each case-study app the paper reports average per-day energy,
per-flow energy and volume, energy per megabyte, and the update
frequency — all over *background* traffic (the table is §4.2's study of
transfers initiated in the background). See DESIGN.md for the units
reading (J/day, J/flow, MB/flow, J/MB).

Flows here use a generous idle timeout (1 h by default) because the
case-study apps hold persistent connections across several updates —
the paper notes "one flow may not correspond to one periodic update".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.core.periodicity import UpdateFrequency
from repro.core.readout import DEFAULT_FLOW_GAP, EnergyReadout
from repro.errors import AnalysisError, NeedsPacketDetail
from repro.units import MB

#: Table 1's app classes and members, in the paper's order.
CASE_STUDY_CLASSES: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    (
        "Social media",
        (
            "com.sina.weibo",
            "com.twitter.android",
            "com.facebook.katana",
            "com.google.android.apps.plus",
        ),
    ),
    (
        "Periodic update services",
        (
            "com.sec.spp.push",
            "com.urbanairship.push",
            "com.google.android.apps.maps",
            "com.google.android.gm",
        ),
    ),
    (
        "Widgets",
        (
            "com.gau.go.launcherex.gowidget.weatherwidget",
            "com.gau.go.weatherex",
            "com.accuweather.android",
            "com.accuweather.widget",
        ),
    ),
    ("Streaming", ("com.spotify.music", "com.pandora.android")),
    ("Podcasts", ("au.com.shiftyjelly.pocketcasts", "com.bambuna.podcastaddict")),
)

#: Default flow idle timeout for case studies (seconds) — the cadence
#: tier's default, so totals-only readouts can render the table.
CASE_STUDY_FLOW_GAP = DEFAULT_FLOW_GAP


@dataclass(frozen=True)
class CaseStudyRow:
    """One app's Table 1 row."""

    app: str
    app_class: str
    users: int
    joules_per_day: float
    joules_per_flow: float
    mb_per_flow: float
    joules_per_mb: float
    update_frequency: UpdateFrequency
    total_energy: float
    total_bytes: int
    n_flows: int


def case_study_row(
    study: EnergyReadout,
    app: str,
    app_class: str = "",
    flow_gap: float = CASE_STUDY_FLOW_GAP,
) -> CaseStudyRow:
    """Compute one app's Table 1 metrics across all users.

    Totals-tier throughout: energy and bytes fold each included user's
    per-(app, state) background totals (the identical float additions
    on every readout), flows and update frequency come from the cadence
    tier. Works on a :class:`~repro.core.accounting.StudyEnergy` and on
    a totals-only readout alike — the latter at the default gaps only.
    """
    app_id = study.app_id(app)
    cadence = study.background_cadence(app_id, flow_gap=flow_gap)
    if cadence.n_users == 0:
        raise AnalysisError(f"no user has background traffic for {app!r}")
    total_energy = 0.0
    total_bytes = 0
    user_days = 0.0
    for entry in cadence.per_user:
        totals = study.user_totals(entry.user_id)
        total_energy += totals.background_energy(app_id)
        total_bytes += totals.background_bytes(app_id)
        user_days += study.duration_days(entry.user_id)
    users = cadence.n_users
    n_flows = cadence.n_flows
    frequency = cadence.update_frequency()
    return CaseStudyRow(
        app=app,
        app_class=app_class,
        users=users,
        joules_per_day=total_energy / user_days if user_days else 0.0,
        joules_per_flow=total_energy / n_flows if n_flows else 0.0,
        mb_per_flow=(total_bytes / MB) / n_flows if n_flows else 0.0,
        joules_per_mb=(total_energy / (total_bytes / MB)) if total_bytes else 0.0,
        update_frequency=frequency,
        total_energy=total_energy,
        total_bytes=total_bytes,
        n_flows=n_flows,
    )


def case_study_table(
    study: EnergyReadout,
    classes: Sequence[Tuple[str, Tuple[str, ...]]] = CASE_STUDY_CLASSES,
    flow_gap: float = CASE_STUDY_FLOW_GAP,
    skip_missing: bool = True,
) -> List[CaseStudyRow]:
    """Compute the full Table 1 in the paper's order.

    Apps with no background traffic in the (synthetic) study are
    skipped when ``skip_missing`` — with few users and rarely-installed
    apps, a short study may simply not contain them, exactly as a short
    slice of the real study would not.
    """
    rows: List[CaseStudyRow] = []
    for app_class, apps in classes:
        for app in apps:
            try:
                rows.append(case_study_row(study, app, app_class, flow_gap))
            except NeedsPacketDetail:
                # Not a missing app — the readout can't serve the table
                # at all; the typed error must reach the caller.
                raise
            except AnalysisError:
                if not skip_missing:
                    raise
    if not rows:
        raise AnalysisError("no case-study app has background traffic")
    return rows


def efficiency_spread(rows: Iterable[CaseStudyRow]) -> float:
    """Max/min ratio of J/MB across rows — the paper's headline that
    similar apps differ by an order of magnitude or more."""
    values = [r.joules_per_mb for r in rows if r.joules_per_mb > 0]
    if len(values) < 2:
        raise AnalysisError("need at least two rows with traffic")
    return max(values) / min(values)
