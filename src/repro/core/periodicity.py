"""Update-interval estimation (Table 1's "Update frequency" column).

From an app's background packet times alone, estimate how often it
phones home: packets are clustered into bursts (a new burst after
``burst_gap`` of silence), and the inter-burst interval distribution is
summarised. A tight interquartile range marks clean periodic timers
(Weibo's 5-10 min); a wide one marks adaptive or on-demand schedules
(Gmail's "updates appear to become discontinuous").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

import numpy as np

from repro.errors import AnalysisError

#: Silence that separates two bursts of the same app.
DEFAULT_BURST_GAP = 30.0


@dataclass(frozen=True)
class UpdateFrequency:
    """Summary of an app's background update cadence (seconds)."""

    median_interval: float
    p25: float
    p75: float
    n_bursts: int

    @property
    def is_periodic(self) -> bool:
        """Heuristic: a clean timer has a tight interquartile range."""
        if self.median_interval <= 0 or self.n_bursts < 5:
            return False
        return (self.p75 - self.p25) / self.median_interval < 0.5

    def describe(self) -> str:
        """Human-readable cadence, minutes/hours as appropriate."""
        return (
            f"~{_fmt(self.median_interval)}"
            if self.is_periodic
            else f"{_fmt(self.p25)}-{_fmt(self.p75)} (varying)"
        )


def _fmt(seconds: float) -> str:
    if seconds < 90:
        return f"{seconds:.0f}s"
    if seconds < 5400:
        return f"{seconds / 60:.0f}min"
    return f"{seconds / 3600:.1f}h"


def burst_starts(
    timestamps: np.ndarray, burst_gap: float = DEFAULT_BURST_GAP
) -> np.ndarray:
    """First-packet times of each burst in a sorted timestamp array."""
    if burst_gap <= 0:
        raise AnalysisError(f"burst_gap must be positive: {burst_gap}")
    if len(timestamps) == 0:
        return np.empty(0)
    gaps = np.diff(timestamps)
    is_start = np.concatenate([[True], gaps > burst_gap])
    return timestamps[is_start]


def inter_burst_intervals(
    timestamps: np.ndarray, burst_gap: float = DEFAULT_BURST_GAP
) -> np.ndarray:
    """Intervals between consecutive burst starts."""
    starts = burst_starts(timestamps, burst_gap)
    return np.diff(starts)


def frequency_from_intervals(
    interval_groups: Iterable[np.ndarray],
    n_bursts: int,
    max_interval: Optional[float] = 24 * 3600.0,
) -> UpdateFrequency:
    """Summarise pre-computed inter-burst intervals into a cadence.

    The reduction half of :func:`estimate_update_frequency`, split out
    so callers that already hold interval arrays — the streaming
    cadence tier, which never sees whole timestamp groups — land on the
    identical :class:`UpdateFrequency`. An *empty* ``interval_groups``
    means no group contained a packet at all; a group that is an empty
    array means one burst with no successor, which still counts toward
    ``n_bursts``.
    """
    pooled_groups = list(interval_groups)
    if not pooled_groups:
        return UpdateFrequency(0.0, 0.0, 0.0, 0)
    pooled = np.concatenate(pooled_groups)
    if max_interval is not None:
        pooled = pooled[pooled <= max_interval]
    if len(pooled) == 0:
        return UpdateFrequency(0.0, 0.0, 0.0, n_bursts)
    return UpdateFrequency(
        median_interval=float(np.median(pooled)),
        p25=float(np.percentile(pooled, 25)),
        p75=float(np.percentile(pooled, 75)),
        n_bursts=n_bursts,
    )


def estimate_update_frequency(
    timestamp_groups: Iterable[np.ndarray],
    burst_gap: float = DEFAULT_BURST_GAP,
    max_interval: Optional[float] = 24 * 3600.0,
) -> UpdateFrequency:
    """Pooled update-frequency estimate over several packet-time groups.

    Groups (one per user, or per background episode) are burst-clustered
    independently so that gaps *between* groups never masquerade as
    update intervals. Intervals above ``max_interval`` — the app was
    simply not running — are discarded.
    """
    intervals: List[np.ndarray] = []
    n_bursts = 0
    for timestamps in timestamp_groups:
        if len(timestamps) == 0:
            continue
        n_bursts += len(burst_starts(timestamps, burst_gap))
        intervals.append(inter_burst_intervals(timestamps, burst_gap))
    return frequency_from_intervals(intervals, n_bursts, max_interval)
