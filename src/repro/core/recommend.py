"""Per-app recommendations (§6 operationalised).

The paper closes by proposing "new app management tools that tailor
network activity to user interaction patterns". This module is that
tool: given a study, it diagnoses each app against the paper's failure
modes and prices the fix —

* **terminate-on-minimise** — a meaningful share of the app's energy is
  foreground-initiated traffic persisting after backgrounding (§4.1);
* **batch-background-updates** — chatty periodic background traffic
  whose tails dominate; reports the §6 batching saving;
* **kill-when-idle** — the app drains for days without foreground use;
  reports the §5 kill-policy saving;
* **efficient** — none of the above at material scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.accounting import StudyEnergy
from repro.core.periodicity import estimate_update_frequency
from repro.core.transitions import persistence_durations
from repro.core.whatif import batching_savings, kill_policy_savings
from repro.core.readout import require_packet_detail
from repro.errors import AnalysisError
from repro.units import HOUR, MINUTE


class Diagnosis(Enum):
    """Failure modes the paper identifies."""

    LINGERING_FOREGROUND = "terminate transfers on minimise"
    CHATTY_BACKGROUND = "batch background updates"
    IDLE_DRAIN = "kill or restrict when idle for days"
    EFFICIENT = "no material inefficiency found"


@dataclass(frozen=True)
class Recommendation:
    """One app's diagnosis and the priced fix."""

    app: str
    total_energy: float
    diagnoses: tuple
    lingering_energy_fraction: float
    update_interval: float
    batching_saving_pct: float
    kill_saving_pct: float

    @property
    def primary(self) -> Diagnosis:
        """The highest-impact diagnosis."""
        return self.diagnoses[0] if self.diagnoses else Diagnosis.EFFICIENT

    def describe(self) -> str:
        """One-line human-readable summary."""
        parts = [f"{self.app}: {self.primary.value}"]
        if Diagnosis.CHATTY_BACKGROUND in self.diagnoses:
            parts.append(f"batching saves {self.batching_saving_pct:.0f}%")
        if Diagnosis.IDLE_DRAIN in self.diagnoses:
            parts.append(f"idle-kill saves {self.kill_saving_pct:.0f}%")
        if Diagnosis.LINGERING_FOREGROUND in self.diagnoses:
            parts.append(
                f"{self.lingering_energy_fraction * 100:.0f}% of energy "
                "lingers after minimise"
            )
        return "; ".join(parts)


def _lingering_fraction(
    study: StudyEnergy, app: str, window: float = 2 * HOUR
) -> float:
    """Share of the app's energy in the first ``window`` of background
    episodes — the §4.1 lingering signature (legitimate syncs finish in
    the first minute; we measure beyond that)."""
    app_id = study.dataset.registry.id_of(app)
    lingering = 0.0
    total = 0.0
    for trace in study.dataset:
        result = study.user_result(trace.user_id)
        index = study.index_for(trace.user_id)
        idx = index.app_indices(app_id)
        if len(idx) == 0:
            continue
        total += float(result.per_packet[idx].sum())
        per_packet = result.per_packet
        app_ts = trace.packets.timestamps[idx]
        for episode in index.background_episodes(app_id):
            lo = np.searchsorted(app_ts, episode.start + 60.0)
            hi = np.searchsorted(app_ts, min(episode.start + window, episode.end))
            if hi > lo:
                lingering += float(per_packet[idx[lo:hi]].sum())
    return lingering / total if total > 0 else 0.0


def recommend(
    study: StudyEnergy,
    app: str,
    batching_period: float = 1 * HOUR,
    idle_days: int = 3,
) -> Recommendation:
    """Diagnose one app and price the applicable fixes."""
    require_packet_detail(study, "recommend")
    app_id = study.dataset.registry.id_of(app)
    total = study.energy_by_app().get(app_id, 0.0)
    if total <= 0:
        raise AnalysisError(f"no energy attributed to {app!r}")

    groups = []
    for trace in study.dataset:
        idx = study.index_for(trace.user_id).app_background_indices(app_id)
        if len(idx):
            groups.append(trace.packets.timestamps[idx])
    frequency = estimate_update_frequency(groups)

    lingering = _lingering_fraction(study, app)
    try:
        batch_pct = batching_savings(study, app, batching_period)
    except AnalysisError:
        batch_pct = 0.0
    kill = kill_policy_savings(study, app, idle_days=idle_days)

    diagnoses: List[Diagnosis] = []
    candidates = []
    if lingering > 0.10:
        candidates.append((lingering, Diagnosis.LINGERING_FOREGROUND))
    if (
        frequency.is_periodic
        and frequency.median_interval < 30 * MINUTE
        and batch_pct > 25.0
    ):
        candidates.append((batch_pct / 100.0, Diagnosis.CHATTY_BACKGROUND))
    if kill.avg_energy_reduction_pct > 10.0:
        candidates.append(
            (kill.avg_energy_reduction_pct / 100.0, Diagnosis.IDLE_DRAIN)
        )
    candidates.sort(reverse=True)
    diagnoses = [d for _, d in candidates] or [Diagnosis.EFFICIENT]

    return Recommendation(
        app=app,
        total_energy=total,
        diagnoses=tuple(diagnoses),
        lingering_energy_fraction=lingering,
        update_interval=frequency.median_interval,
        batching_saving_pct=batch_pct,
        kill_saving_pct=kill.avg_energy_reduction_pct,
    )


def recommendation_report(
    study: StudyEnergy,
    apps: Optional[Sequence[str]] = None,
    top_n: int = 15,
) -> List[Recommendation]:
    """Recommendations for the study's top energy consumers.

    Args:
        study: Precomputed study energy.
        apps: Explicit app list; defaults to the ``top_n`` apps by
            attributed energy.
        top_n: How many top consumers to diagnose when ``apps`` is None.
    """
    require_packet_detail(study, "recommendation_report")
    if apps is None:
        totals = study.energy_by_app()
        registry = study.dataset.registry
        ranked = sorted(totals, key=lambda a: totals[a], reverse=True)[:top_n]
        apps = [registry.name_of(a) for a in ranked]
    return [recommend(study, app) for app in apps]
