"""§5 what-if analysis — compatibility surface over :mod:`repro.policy`.

The hand-rolled drop-mask simulations that used to live here were
ported onto the :class:`~repro.policy.CounterfactualPolicy` protocol
(bit-identically — asserted in ``tests/test_policy_properties.py``)
and now evaluate through the one policy engine,
:func:`repro.policy.evaluate_policy`. This module keeps the historical
import site: every name below is the same object the policy package
defines.
"""

from __future__ import annotations

from repro.policy.engine import TotalSavings
from repro.policy.kill import (
    DEFAULT_IDLE_DAYS,
    KillPolicyResult,
    UserKillOutcome,
    kill_policy_savings,
    killed_days as _killed_days,
    killed_drop_mask as _killed_drop_mask,
    max_bounded_run as _max_bounded_run,
    savings_on_affected_days,
    total_savings,
)
from repro.policy.drops import doze_savings, frequency_cap_savings
from repro.policy.shifts import (
    CoalescingResult,
    batching_savings,
    os_coalescing_savings,
)

__all__ = [
    "DEFAULT_IDLE_DAYS",
    "CoalescingResult",
    "KillPolicyResult",
    "TotalSavings",
    "UserKillOutcome",
    "batching_savings",
    "doze_savings",
    "frequency_cap_savings",
    "kill_policy_savings",
    "os_coalescing_savings",
    "savings_on_affected_days",
    "total_savings",
]
