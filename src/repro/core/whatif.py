"""§5 what-if analysis: preemptively killing idle background apps.

The paper proposes that the OS kill apps that have stayed in the
background for several consecutive days without foreground use, and
simulates a 3-day threshold on the traces (Table 2). We reproduce that
simulation — dropping the background packets the policy would have
prevented and re-running the full radio energy attribution, so tail
effects across concurrent apps are handled honestly — plus two
extensions the paper discusses qualitatively: a Doze-like screen-off
restriction and background-batching estimates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.accounting import StudyEnergy
from repro.core.periodicity import burst_starts
from repro.core.readout import require_packet_detail
from repro.errors import AnalysisError
from repro.radio.attribution import attribute_energy
from repro.trace.arrays import PacketArray
from repro.trace.dataset import Dataset
from repro.trace.index import TraceIndex
from repro.units import DAY

#: The paper's proposed idle threshold, days.
DEFAULT_IDLE_DAYS = 3


@dataclass(frozen=True)
class UserKillOutcome:
    """Per-user effect of the kill policy on one app."""

    user_id: int
    app_energy_before: float
    app_energy_after: float
    killed_days: int
    bg_only_days: int
    traffic_days: int
    max_consecutive_bg_only: int

    @property
    def reduction(self) -> float:
        """Fractional app-energy reduction for this user."""
        if self.app_energy_before <= 0:
            return 0.0
        return 1.0 - self.app_energy_after / self.app_energy_before


@dataclass(frozen=True)
class KillPolicyResult:
    """Table 2 row: one app under the kill-after-N-idle-days policy."""

    app: str
    idle_days: int
    per_user: Tuple[UserKillOutcome, ...]

    @property
    def pct_background_only_days(self) -> float:
        """Row A: % of traffic days with only background traffic."""
        bg = sum(u.bg_only_days for u in self.per_user)
        days = sum(u.traffic_days for u in self.per_user)
        return 100.0 * bg / days if days else 0.0

    @property
    def max_consecutive_background_days(self) -> int:
        """Row B: longest fg-bounded run of background-only days."""
        if not self.per_user:
            return 0
        return max(u.max_consecutive_bg_only for u in self.per_user)

    @property
    def avg_energy_reduction_pct(self) -> float:
        """Row C: per-user average % reduction of the app's energy."""
        if not self.per_user:
            return 0.0
        return 100.0 * float(np.mean([u.reduction for u in self.per_user]))


def _day_classification(
    study: StudyEnergy, user_id: int, app_id: int
) -> Tuple[np.ndarray, np.ndarray]:
    """(fg-day, bg-day) boolean masks for one user's app."""
    return study.app_days_with_traffic(user_id, app_id)


def _max_bounded_run(fg: np.ndarray, bg_only: np.ndarray) -> int:
    """Longest run of bg-only days with foreground days on both sides.

    Days with neither foreground nor background traffic break a run —
    the app was not producing anything to save.
    """
    best = 0
    run = 0
    seen_fg = False
    for day in range(len(fg)):
        if fg[day]:
            if seen_fg:
                best = max(best, run)
            run = 0
            seen_fg = True
        elif bg_only[day] and seen_fg:
            run += 1
        else:
            run = 0
    return best


def _killed_days(fg: np.ndarray, bg: np.ndarray, idle_days: int) -> np.ndarray:
    """Days on which the policy would have the app dead.

    The idle counter counts consecutive days without foreground use
    while the app is emitting background traffic; once it reaches
    ``idle_days`` the app is killed until the next foreground day.
    """
    n = len(fg)
    killed = np.zeros(n, dtype=bool)
    idle = 0
    dead = False
    for day in range(n):
        if fg[day]:
            idle = 0
            dead = False
            continue
        if bg[day] or dead:
            idle += 1
        if idle >= idle_days:
            dead = True
            killed[day] = True
    return killed


def _killed_drop_mask(
    index: TraceIndex, app_id: int, killed: np.ndarray, start: float
) -> np.ndarray:
    """Boolean drop mask over the trace's original packets: the app's
    background packets on killed days."""
    packets = index.packets
    idx = index.app_background_indices(app_id)
    days = ((packets.timestamps[idx] - start) // DAY).astype(np.int64)
    days = np.clip(days, 0, len(killed) - 1)
    drop = np.zeros(len(packets), dtype=bool)
    drop[idx[killed[days]]] = True
    return drop


def kill_policy_savings(
    study: StudyEnergy,
    app: str,
    idle_days: int = DEFAULT_IDLE_DAYS,
) -> KillPolicyResult:
    """Table 2: simulate killing ``app`` after ``idle_days`` idle days.

    The modified trace is re-attributed through the full radio model so
    that removed tails and promotions are credited exactly.
    """
    require_packet_detail(study, "kill_policy_savings")
    if idle_days < 1:
        raise AnalysisError(f"idle_days must be >= 1: {idle_days}")
    app_id = study.dataset.registry.id_of(app)
    outcomes: List[UserKillOutcome] = []
    for trace in study.dataset:
        before = study.user_app_energy(trace.user_id, app_id)
        if before <= 0:
            continue
        fg, bg = _day_classification(study, trace.user_id, app_id)
        bg_only = bg & ~fg
        killed = _killed_days(fg, bg, idle_days)
        if killed.any():
            drop = _killed_drop_mask(
                study.index_for(trace.user_id), app_id, killed, trace.start
            )
            kept = trace.packets.select(~drop)
            result = attribute_energy(
                study.model, kept, window=(trace.start, trace.end), policy=study.policy
            )
            after = result.energy_by_app().get(app_id, 0.0)
        else:
            after = before
        outcomes.append(
            UserKillOutcome(
                user_id=trace.user_id,
                app_energy_before=before,
                app_energy_after=after,
                killed_days=int(killed.sum()),
                bg_only_days=int(bg_only.sum()),
                traffic_days=int((fg | bg).sum()),
                max_consecutive_bg_only=_max_bounded_run(fg, bg_only),
            )
        )
    if not outcomes:
        raise AnalysisError(f"no user has energy attributed to {app!r}")
    return KillPolicyResult(app=app, idle_days=idle_days, per_user=tuple(outcomes))


@dataclass(frozen=True)
class TotalSavings:
    """Device-level effect of a policy across all users."""

    total_before: float
    total_after: float
    per_user_pct: Tuple[float, ...]

    @property
    def overall_pct(self) -> float:
        """Total % reduction across the study."""
        if self.total_before <= 0:
            return 0.0
        return 100.0 * (1.0 - self.total_after / self.total_before)

    @property
    def mean_user_pct(self) -> float:
        """Average per-user % reduction."""
        return float(np.mean(self.per_user_pct)) if self.per_user_pct else 0.0


def total_savings(
    study: StudyEnergy,
    idle_days: int = DEFAULT_IDLE_DAYS,
    apps: Optional[Sequence[str]] = None,
) -> TotalSavings:
    """Apply the kill policy to every app (or ``apps``) simultaneously
    and measure total attributed-energy savings.

    The paper finds this is <1% on average — each individual app is a
    small share of a device's total — even though per-app savings
    (Table 2 row C) can exceed 50%.
    """
    require_packet_detail(study, "total_savings")
    registry = study.dataset.registry
    if apps is None:
        app_ids = None
    else:
        app_ids = [registry.id_of(a) for a in apps]
    total_before = 0.0
    total_after = 0.0
    per_user = []
    for trace in study.dataset:
        before = study.user_result(trace.user_id).attributed_energy
        index = study.index_for(trace.user_id)
        drop = np.zeros(len(trace.packets), dtype=bool)
        candidates = app_ids if app_ids is not None else trace.app_ids()
        for app_id in candidates:
            fg, bg = _day_classification(study, trace.user_id, app_id)
            killed = _killed_days(fg, bg, idle_days)
            if killed.any():
                # Each app's drop mask touches only that app's rows, so
                # the union equals applying the drops one after another.
                drop |= _killed_drop_mask(index, app_id, killed, trace.start)
        kept = trace.packets.select(~drop)
        after = attribute_energy(
            study.model, kept, window=(trace.start, trace.end), policy=study.policy
        ).attributed_energy
        total_before += before
        total_after += after
        per_user.append(100.0 * (1.0 - after / before) if before > 0 else 0.0)
    return TotalSavings(total_before, total_after, tuple(per_user))


def savings_on_affected_days(
    study: StudyEnergy, app: str, idle_days: int = DEFAULT_IDLE_DAYS
) -> float:
    """% reduction of users' *total* energy on days the kill is active.

    The paper's strongest single number: for users running Weibo,
    disabling it after 3 idle days cut their total network energy on
    those days by 16%.
    """
    require_packet_detail(study, "savings_on_affected_days")
    app_id = study.dataset.registry.id_of(app)
    affected_before = 0.0
    affected_after = 0.0
    for trace in study.dataset:
        fg, bg = _day_classification(study, trace.user_id, app_id)
        killed = _killed_days(fg, bg, idle_days)
        if not killed.any():
            continue
        daily_before = study.daily_energy(trace.user_id)
        drop = _killed_drop_mask(
            study.index_for(trace.user_id), app_id, killed, trace.start
        )
        kept = trace.packets.select(~drop)
        result = attribute_energy(
            study.model, kept, window=(trace.start, trace.end), policy=study.policy
        )
        days = ((kept.timestamps - trace.start) // DAY).astype(np.int64)
        daily_after = np.bincount(
            days, weights=result.per_packet, minlength=len(daily_before)
        )[: len(daily_before)]
        affected_before += float(daily_before[killed].sum())
        affected_after += float(daily_after[killed].sum())
    if affected_before <= 0:
        raise AnalysisError(f"the policy never activates for {app!r}")
    return 100.0 * (1.0 - affected_after / affected_before)


def doze_savings(
    study: StudyEnergy,
    screen_off_threshold: float = 3600.0,
    whitelist: Iterable[str] = (),
) -> TotalSavings:
    """Doze-like extension: suppress all background traffic once the
    screen has been off for ``screen_off_threshold`` seconds.

    Whitelisted apps (the paper suggests widgets may legitimately need
    exemptions) are untouched. Models Android M's announced behaviour.
    """
    require_packet_detail(study, "doze_savings")
    registry = study.dataset.registry
    exempt = {registry.id_of(a) for a in whitelist}
    total_before = 0.0
    total_after = 0.0
    per_user = []
    for trace in study.dataset:
        before = study.user_result(trace.user_id).attributed_energy
        ts = trace.packets.timestamps
        # Time since the screen last turned off (inf while on).
        screen = trace.events.screen_events
        ev_times = np.array([e.timestamp for e in screen])
        ev_on = np.array([e.on for e in screen], dtype=bool)
        idx = np.searchsorted(ev_times, ts, side="right") - 1
        off_since = np.where(
            (idx >= 0) & ~ev_on[np.clip(idx, 0, None)],
            ts - ev_times[np.clip(idx, 0, None)],
            0.0,
        )
        is_bg = study.index_for(trace.user_id).background_mask
        drop = is_bg & (off_since > screen_off_threshold)
        if exempt:
            drop &= ~np.isin(trace.packets.apps, np.array(sorted(exempt)))
        kept = trace.packets.select(~drop)
        after = attribute_energy(
            study.model, kept, window=(trace.start, trace.end), policy=study.policy
        ).attributed_energy
        total_before += before
        total_after += after
        per_user.append(100.0 * (1.0 - after / before) if before > 0 else 0.0)
    return TotalSavings(total_before, total_after, tuple(per_user))


def batching_savings(
    study: StudyEnergy, app: str, target_period: float
) -> float:
    """Estimated % energy saving from batching an app's background
    bursts to one transfer every ``target_period`` seconds.

    A first-order model of §6's recommendation: each eliminated burst
    saves roughly one radio tail plus one promotion (the transfer bytes
    still have to move). Returns the saving as % of the app's current
    energy.
    """
    require_packet_detail(study, "batching_savings")
    if target_period <= 0:
        raise AnalysisError(f"target_period must be positive: {target_period}")
    app_id = study.dataset.registry.id_of(app)
    tail_cost = study.model.full_tail_energy + study.model.promotion_energy
    app_energy = 0.0
    saved = 0.0
    for trace in study.dataset:
        idx = study.index_for(trace.user_id).app_background_indices(app_id)
        if len(idx) == 0:
            continue
        result = study.user_result(trace.user_id)
        app_energy += float(result.per_packet[idx].sum())
        ts = trace.packets.timestamps[idx]
        starts = burst_starts(ts)
        if len(starts) < 2:
            continue
        # Batch within each day: background activity is often
        # concentrated (lingering episodes, waking hours), so comparing
        # against a uniform whole-study schedule would under-count.
        days = ((starts - trace.start) // DAY).astype(np.int64)
        for day in np.unique(days):
            day_starts = starts[days == day]
            if len(day_starts) < 2:
                continue
            span = float(day_starts[-1] - day_starts[0])
            batched = max(1, int(np.ceil(span / target_period)) + 1)
            eliminated = max(0, len(day_starts) - batched)
            saved += eliminated * tail_cost
    if app_energy <= 0:
        raise AnalysisError(f"no background energy attributed to {app!r}")
    return 100.0 * min(saved / app_energy, 1.0)


@dataclass(frozen=True)
class CoalescingResult:
    """Effect of OS-level background batching (§6's iOS discussion)."""

    period: float
    total_before: float
    total_after: float
    moved_packets: int
    mean_delay: float

    @property
    def savings_pct(self) -> float:
        """% of attributed energy removed by coalescing."""
        if self.total_before <= 0:
            return 0.0
        return 100.0 * (1.0 - self.total_after / self.total_before)


def os_coalescing_savings(
    study: StudyEnergy, period: float = 1800.0
) -> CoalescingResult:
    """Simulate OS-managed background scheduling.

    §6: "OS management allows transfers to be batched, providing
    opportunities for energy consumption optimization" (the iOS model).
    Every background-state packet is delayed to the next multiple of
    ``period`` from the trace start, so all apps' background transfers
    on a device fire together and share promotions and tails; the
    modified timeline is re-attributed through the full radio model.

    Unlike the kill policy, no traffic is dropped — the cost is
    freshness (mean added delay ~ period/2), which is also reported.
    """
    require_packet_detail(study, "os_coalescing_savings")
    if period <= 0:
        raise AnalysisError(f"period must be positive: {period}")
    total_before = 0.0
    total_after = 0.0
    moved = 0
    delay_sum = 0.0
    for trace in study.dataset:
        total_before += study.user_result(trace.user_id).attributed_energy
        packets = trace.packets
        data = packets.data.copy()
        ts = data["timestamp"]
        is_bg = study.index_for(trace.user_id).background_mask
        rel = ts[is_bg] - trace.start
        shifted = np.ceil(rel / period) * period + trace.start
        # Keep everything inside the observation window.
        shifted = np.minimum(shifted, trace.end - 1e-6)
        delay_sum += float((shifted - ts[is_bg]).sum())
        moved += int(is_bg.sum())
        data["timestamp"][is_bg] = shifted
        coalesced = PacketArray(data).sorted_by_time()
        total_after += attribute_energy(
            study.model,
            coalesced,
            window=(trace.start, trace.end),
            policy=study.policy,
        ).attributed_energy
    return CoalescingResult(
        period=period,
        total_before=total_before,
        total_after=total_after,
        moved_packets=moved,
        mean_delay=delay_sum / moved if moved else 0.0,
    )


def frequency_cap_savings(
    study: StudyEnergy, min_period: float = 1800.0
) -> TotalSavings:
    """Windows-Phone-style policy: cap background task frequency.

    §6 notes Windows Phone "limit[s] the frequency with which
    background apps can run" (30-minute scheduled agents). Simulated by
    keeping, per app and device, only the background bursts that start
    at least ``min_period`` after the previous surviving burst; later
    packets of a surviving burst (within 30 s) are kept too. The
    modified traces are re-attributed through the full radio model.
    """
    require_packet_detail(study, "frequency_cap_savings")
    if min_period <= 0:
        raise AnalysisError(f"min_period must be positive: {min_period}")
    total_before = 0.0
    total_after = 0.0
    per_user = []
    for trace in study.dataset:
        before = study.user_result(trace.user_id).attributed_energy
        packets = trace.packets
        index = study.index_for(trace.user_id)
        keep = np.ones(len(packets), dtype=bool)
        ts = packets.timestamps
        for app_id in index:
            idx = index.app_background_indices(app_id)
            if len(idx) == 0:
                continue
            app_ts = ts[idx]
            last_kept = -np.inf
            for i, t in enumerate(app_ts):
                if t - last_kept >= min_period:
                    last_kept = t  # a new permitted task window opens
                elif t - last_kept > 30.0:
                    keep[idx[i]] = False  # outside the task's burst
        kept = packets.select(keep)
        after = attribute_energy(
            study.model, kept, window=(trace.start, trace.end), policy=study.policy
        ).attributed_energy
        total_before += before
        total_after += after
        per_user.append(100.0 * (1.0 - after / before) if before > 0 else 0.0)
    return TotalSavings(total_before, total_after, tuple(per_user))
