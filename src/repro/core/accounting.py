"""Study-wide energy accounting.

:class:`StudyEnergy` runs the radio model over every user's merged
packet timeline once (the radio is shared per device, so attribution
must happen device-wide) and caches the per-packet attribution. All
figure/table analyses then reduce those arrays.

The engine has three independent speed knobs, all off by default:

* ``workers`` — per-user attribution fans out over a process pool
  (users are independent; results are identical for any worker count);
* ``lazy`` — nothing is computed at construction; each user's
  attribution is computed on first access and memoized, and any
  study-wide reduction materializes the remaining users in one
  (possibly parallel) batch;
* ``cache_dir`` — computed arrays are persisted per user, keyed by
  (dataset fingerprint, model, policy), so re-analysing the same saved
  study skips attribution entirely.

A :class:`~repro.metrics.RunMetrics` instance (own or injected) records
attribution time, packet throughput and cache hit/miss counts, plus the
shared per-user :class:`~repro.trace.index.TraceIndex` layer's build
time (``index.build`` stage) and reuse counts (``index.hits``). Every
per-app reduction here goes through :meth:`StudyEnergy.index_for`
rather than re-scanning the packet arrays; ``prepare_indexes()``
batch-builds the indexes across the worker pool.

The paper's invariant holds by construction and is property-tested: the
total cellular energy of a device equals the sum over apps of the
energy attributed to them, plus the radio's idle floor.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.core.readout import (
    DEFAULT_FLOW_GAP,
    AppCadence,
    KeyedTotals,
    ReadoutProvenance,
    UserCadence,
    UserTotalsView,
    combine_app_state,
    combined_app_state_keys,
    merge_keyed_totals,
)
from repro.core.periodicity import (
    DEFAULT_BURST_GAP,
    burst_starts,
    inter_burst_intervals,
)
from repro.errors import AnalysisError
from repro.metrics import RunMetrics
from repro.parallel import map_tasks, resolve_workers
from repro.radio.attribution import (
    AttributionResult,
    AttributionTask,
    TailPolicy,
    result_from_payload,
)
from repro.radio.base import RadioModel
from repro.radio.lte import LTE_DEFAULT
from repro.core.cache import AttributionCache
from repro.trace.dataset import Dataset
from repro.trace.flow import reconstruct_flows
from repro.trace.index import IndexTask, TraceIndex
from repro.trace.trace import UserTrace
from repro.units import DAY


class StudyEnergy:
    """Per-packet energy attribution for every user of a dataset.

    Args:
        dataset: The study to attribute.
        model: Radio power model (default: the paper's LTE constants).
        policy: Tail-energy attribution rule.
        workers: Process count for batch attribution; ``0`` or ``None``
            means one per available CPU, ``1`` stays in process.
        lazy: Defer all computation to first access.
        cache_dir: Directory for the on-disk attribution cache; ``None``
            disables it.
        metrics: A shared :class:`RunMetrics` to record into; a private
            one is created when omitted.
    """

    #: This readout holds the full per-packet arrays — every analysis
    #: tier works, including the ones gated by
    #: :func:`~repro.core.readout.require_packet_detail`.
    has_packet_detail = True

    def __init__(
        self,
        dataset: Dataset,
        model: RadioModel = LTE_DEFAULT,
        policy: TailPolicy = TailPolicy.LAST_PACKET,
        *,
        workers: Optional[int] = 1,
        lazy: bool = False,
        cache_dir: Optional[Union[str, Path]] = None,
        metrics: Optional[RunMetrics] = None,
    ) -> None:
        self.dataset = dataset
        self.model = model
        self.policy = policy
        self.workers = resolve_workers(workers)
        self.metrics = metrics if metrics is not None else RunMetrics()
        self._order: List[int] = [t.user_id for t in dataset]
        self._traces: Dict[int, UserTrace] = {t.user_id: t for t in dataset}
        self._results: Dict[int, AttributionResult] = {}
        self._energy_by_app: Optional[Dict[int, float]] = None
        self._bytes_by_app: Optional[Dict[int, int]] = None
        self._energy_by_app_state: Optional[Dict[Tuple[int, int], float]] = None
        self._user_totals: Dict[int, UserTotalsView] = {}
        self._cache: Optional[AttributionCache] = (
            AttributionCache.for_study(cache_dir, dataset, model, policy)
            if cache_dir is not None
            else None
        )
        if not lazy:
            self.materialize()

    # ------------------------------------------------------------------
    # Computation
    # ------------------------------------------------------------------
    def materialize(self) -> "StudyEnergy":
        """Compute every user not yet attributed (idempotent).

        Disk-cached users load first; the remainder is computed in one
        batch — across ``self.workers`` processes when that pays — and
        written back to the cache. Called implicitly by every
        study-wide reduction, so lazy instances never observe a
        partially-attributed dataset.
        """
        pending = [uid for uid in self._order if uid not in self._results]
        if not pending:
            return self
        with self.metrics.stage("attribute"):
            remaining = []
            for uid in pending:
                payload = self._load_cached(self._traces[uid])
                if payload is None:
                    remaining.append(uid)
                else:
                    self._adopt(uid, payload)
            task = AttributionTask(
                self.model,
                self.policy,
                {
                    uid: (self._traces[uid].packets, self._window(uid))
                    for uid in remaining
                },
            )
            for uid, payload in map_tasks(task, remaining, self.workers):
                self._adopt(uid, payload, computed=True)
        return self

    def index_for(self, user_id: int) -> TraceIndex:
        """One user's shared :class:`~repro.trace.index.TraceIndex`.

        The index is memoized on the trace itself, so every analysis
        over this study — and any other engine over the same dataset —
        sees the same partition: one app-grouping sort per user, ever.
        Build time and reuse counts land in this engine's metrics
        (``index.build`` stage, ``index.hits`` counter). The index is
        derived state: it never enters the attribution cache key.
        """
        trace = self._traces.get(user_id)
        if trace is None:
            raise AnalysisError(f"unknown user id {user_id}")
        return trace.index(metrics=self.metrics)

    def prepare_indexes(self) -> "StudyEnergy":
        """Batch-build every user's index, across the worker pool.

        Optional warm-up for full figure/table suites: with
        ``workers > 1`` the per-user sorts and state masks are computed
        in the pool (only the order arrays and masks ship back) and
        adopted here. Users whose index is already grouped are skipped.
        """
        pending = [
            uid
            for uid in self._order
            if not self._traces[uid].index(metrics=self.metrics).is_grouped
        ]
        if not pending:
            return self
        with self.metrics.stage("index.build"):
            task = IndexTask({uid: self._traces[uid].packets for uid in pending})
            for uid, payload in map_tasks(task, pending, self.workers):
                self._traces[uid].index(metrics=self.metrics).adopt_payload(
                    payload
                )
        return self

    def _window(self, user_id: int) -> Tuple[float, float]:
        trace = self._traces[user_id]
        return (trace.start, trace.end)

    def _load_cached(self, trace: UserTrace) -> Optional[Dict[str, object]]:
        if self._cache is None:
            return None
        payload = self._cache.load(trace.user_id, trace.packets)
        if payload is None:
            self.metrics.count("attribution.cache_misses")
        else:
            self.metrics.count("attribution.cache_hits")
        return payload

    def _adopt(
        self, user_id: int, payload: Dict[str, object], computed: bool = False
    ) -> AttributionResult:
        packets = self._traces[user_id].packets
        result = result_from_payload(self.model, packets, self.policy, payload)
        self._results[user_id] = result
        if computed:
            self.metrics.count("attribution.users")
            self.metrics.count("attribution.packets", len(packets))
            if self._cache is not None:
                self._cache.store(user_id, payload)
        return result

    def _iter_results(self) -> Iterator[AttributionResult]:
        """All results, in dataset order regardless of access history.

        Keeps every study-wide float reduction bit-identical between
        eager, lazy and parallel instances (dict insertion order would
        follow first-access order on a lazy engine).
        """
        self.materialize()
        return (self._results[uid] for uid in self._order)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def user_result(self, user_id: int) -> AttributionResult:
        """The attribution for one user (computed on first access)."""
        result = self._results.get(user_id)
        if result is not None:
            return result
        trace = self._traces.get(user_id)
        if trace is None:
            raise AnalysisError(f"unknown user id {user_id}")
        with self.metrics.stage("attribute"):
            payload = self._load_cached(trace)
            if payload is not None:
                return self._adopt(user_id, payload)
            task = AttributionTask(
                self.model,
                self.policy,
                {user_id: (trace.packets, self._window(user_id))},
            )
            _, payload = task(user_id)
            return self._adopt(user_id, payload, computed=True)

    @property
    def user_ids(self) -> List[int]:
        """User ids in dataset order."""
        return [t.user_id for t in self.dataset]

    @property
    def provenance(self) -> ReadoutProvenance:
        """The (fingerprint, model, policy) triple keying this study.

        The same triple the attribution disk cache keys by; the
        results store (:mod:`repro.store`) keys rendered artefacts by
        it too. Reading it never triggers attribution — the
        fingerprint digests packets only — so a lazy engine can be
        keyed (and answered from the store) without computing.
        """
        return ReadoutProvenance(
            fingerprint=self.dataset.fingerprint(),
            model=repr(self.model),
            policy=self.policy.value,
        )

    def app_id(self, app: str) -> int:
        """Resolve an app name through the dataset registry."""
        return self.dataset.registry.id_of(app)

    def app_name(self, app_id: int) -> str:
        """Resolve a numeric app id through the dataset registry."""
        return self.dataset.registry.name_of(app_id)

    def app_category(self, app_id: int) -> str:
        """Category of the app with id ``app_id``."""
        return self.dataset.registry.by_id(app_id).category

    def duration_days(self, user_id: int) -> float:
        """One user's observation window length in days."""
        trace = self._traces.get(user_id)
        if trace is None:
            raise AnalysisError(f"unknown user id {user_id}")
        return trace.duration_days

    def user_totals(self, user_id: int) -> UserTotalsView:
        """One user's totals-tier view (memoized).

        The same keyed dicts a totals-only readout carries: per-app and
        per-(app, state) joules straight from the attribution bincounts
        and exact per-(app, state) byte integers. Analyses that fold
        over these perform identical float additions on every readout.
        """
        view = self._user_totals.get(user_id)
        if view is not None:
            return view
        result = self.user_result(user_id)
        packets = self._traces[user_id].packets
        app_state = {
            combine_app_state(a, s): v
            for (a, s), v in result.energy_by_app_state().items()
        }
        bytes_state = KeyedTotals(dtype=np.int64)
        bytes_state.add(
            combined_app_state_keys(packets.apps, packets.states),
            packets.sizes.astype(np.int64),
        )
        view = UserTotalsView(
            user_id,
            result.energy_by_app(),
            app_state,
            bytes_state.as_dict(),
            result.energy.idle_energy,
        )
        self._user_totals[user_id] = view
        return view

    def background_cadence(
        self,
        app_id: int,
        flow_gap: float = DEFAULT_FLOW_GAP,
        burst_gap: float = DEFAULT_BURST_GAP,
    ) -> AppCadence:
        """One app's background flow/burst cadence across all users.

        Computed from the packet arrays, so — unlike a totals-only
        readout's stored cadence — any ``flow_gap``/``burst_gap`` works.
        Users without background traffic for the app are absent, the
        batch inclusion rule Table 1 has always used.
        """
        per_user = []
        for uid in self._order:
            index = self.index_for(uid)
            if len(index.app_background_indices(app_id)) == 0:
                continue
            subset = index.app_background_packets(app_id)
            timestamps = subset.timestamps
            per_user.append(
                UserCadence(
                    uid,
                    len(reconstruct_flows(subset, gap_timeout=flow_gap)),
                    len(burst_starts(timestamps, burst_gap)),
                    inter_burst_intervals(timestamps, burst_gap),
                )
            )
        return AppCadence(app_id, flow_gap, burst_gap, tuple(per_user))

    # ------------------------------------------------------------------
    # Totals
    # ------------------------------------------------------------------
    @property
    def total_energy(self) -> float:
        """Radio energy over all users, joules (attributed + idle)."""
        return sum(r.total_energy for r in self._iter_results())

    @property
    def attributed_energy(self) -> float:
        """Energy attributed to apps over all users, joules."""
        return sum(r.attributed_energy for r in self._iter_results())

    @property
    def idle_energy(self) -> float:
        """Unattributed idle-floor energy over all users, joules."""
        return sum(r.energy.idle_energy for r in self._iter_results())

    def energy_by_app(self) -> Dict[int, float]:
        """Joules per app id, summed over users (memoized).

        Attribution results are immutable once computed, so the
        study-wide roll-up is computed once and a copy returned on
        every call — analyses that re-ask per app (recommendations,
        reports) no longer pay a full re-reduction each time.
        """
        if self._energy_by_app is None:
            self._energy_by_app = merge_keyed_totals(
                r.energy_by_app() for r in self._iter_results()
            )
        return dict(self._energy_by_app)

    def bytes_by_app(self) -> Dict[int, int]:
        """Traffic bytes per app id, summed over users (memoized)."""
        if self._bytes_by_app is None:
            self._bytes_by_app = merge_keyed_totals(
                (
                    trace.index(metrics=self.metrics).bytes_by_app()
                    for trace in self.dataset
                ),
                zero=0,
            )
        return dict(self._bytes_by_app)

    def energy_by_app_state(self) -> Dict[Tuple[int, int], float]:
        """Joules per (app id, process state), summed over users (memoized)."""
        if self._energy_by_app_state is None:
            self._energy_by_app_state = merge_keyed_totals(
                r.energy_by_app_state() for r in self._iter_results()
            )
        return dict(self._energy_by_app_state)

    def energy_by_state(self) -> Dict[int, float]:
        """Joules per process state, summed over apps and users."""
        return merge_keyed_totals(
            {state: joules}
            for (_, state), joules in self.energy_by_app_state().items()
        )

    # ------------------------------------------------------------------
    # Per-user / per-day reductions
    # ------------------------------------------------------------------
    def user_app_energy(self, user_id: int, app_id: int) -> float:
        """Joules attributed to one app on one device."""
        return self.user_result(user_id).energy_by_app().get(app_id, 0.0)

    def daily_energy(
        self, user_id: int, app_id: Optional[int] = None
    ) -> np.ndarray:
        """Per-day attributed joules for one user (optionally one app).

        Day ``d`` covers ``[d*86400, (d+1)*86400)`` seconds of study
        time; the returned array spans the full trace duration.
        """
        trace = self.dataset.user(user_id)
        result = self.user_result(user_id)
        n_days = int(np.ceil((trace.end - trace.start) / DAY))
        ts = trace.packets.timestamps
        energy = result.per_packet
        if app_id is not None:
            idx = self.index_for(user_id).app_indices(app_id)
            ts = ts[idx]
            energy = energy[idx]
        days = ((ts - trace.start) // DAY).astype(np.int64)
        return np.bincount(days, weights=energy, minlength=n_days)[:n_days]

    def app_days_with_traffic(
        self, user_id: int, app_id: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(has-foreground-traffic, has-background-traffic) day masks.

        Foreground means packets labelled FOREGROUND or VISIBLE;
        background the other three states (the paper's grouping).
        """
        trace = self.dataset.user(user_id)
        n_days = int(np.ceil((trace.end - trace.start) / DAY))
        index = self.index_for(user_id)
        ts = trace.packets.timestamps
        fg = np.zeros(n_days, dtype=bool)
        bg = np.zeros(n_days, dtype=bool)
        fg_days = (
            (ts[index.app_foreground_indices(app_id)] - trace.start) // DAY
        ).astype(np.int64)
        bg_days = (
            (ts[index.app_background_indices(app_id)] - trace.start) // DAY
        ).astype(np.int64)
        fg[np.unique(fg_days)] = True
        bg[np.unique(bg_days)] = True
        return fg, bg

    def users_with_app(self, app_id: int) -> List[int]:
        """Users whose trace contains at least one packet of the app."""
        return [
            trace.user_id
            for trace in self.dataset
            if self.index_for(trace.user_id).has_app(app_id)
        ]
