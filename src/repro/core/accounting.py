"""Study-wide energy accounting.

:class:`StudyEnergy` runs the radio model over every user's merged
packet timeline once (the radio is shared per device, so attribution
must happen device-wide) and caches the per-packet attribution. All
figure/table analyses then reduce those arrays.

The paper's invariant holds by construction and is property-tested: the
total cellular energy of a device equals the sum over apps of the
energy attributed to them, plus the radio's idle floor.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.errors import AnalysisError
from repro.radio.attribution import AttributionResult, TailPolicy, attribute_energy
from repro.radio.base import RadioModel
from repro.radio.lte import LTE_DEFAULT
from repro.trace.dataset import Dataset
from repro.trace.events import BACKGROUND_STATES, FOREGROUND_STATES, ProcessState
from repro.units import DAY


class StudyEnergy:
    """Per-packet energy attribution for every user of a dataset."""

    def __init__(
        self,
        dataset: Dataset,
        model: RadioModel = LTE_DEFAULT,
        policy: TailPolicy = TailPolicy.LAST_PACKET,
    ) -> None:
        self.dataset = dataset
        self.model = model
        self.policy = policy
        self._results: Dict[int, AttributionResult] = {}
        for trace in dataset:
            self._results[trace.user_id] = attribute_energy(
                model, trace.packets, window=(trace.start, trace.end), policy=policy
            )

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def user_result(self, user_id: int) -> AttributionResult:
        """The cached attribution for one user."""
        try:
            return self._results[user_id]
        except KeyError:
            raise AnalysisError(f"unknown user id {user_id}") from None

    @property
    def user_ids(self) -> List[int]:
        """User ids in dataset order."""
        return [t.user_id for t in self.dataset]

    def app_id(self, app: str) -> int:
        """Resolve an app name through the dataset registry."""
        return self.dataset.registry.id_of(app)

    # ------------------------------------------------------------------
    # Totals
    # ------------------------------------------------------------------
    @property
    def total_energy(self) -> float:
        """Radio energy over all users, joules (attributed + idle)."""
        return sum(r.total_energy for r in self._results.values())

    @property
    def attributed_energy(self) -> float:
        """Energy attributed to apps over all users, joules."""
        return sum(r.attributed_energy for r in self._results.values())

    @property
    def idle_energy(self) -> float:
        """Unattributed idle-floor energy over all users, joules."""
        return sum(r.energy.idle_energy for r in self._results.values())

    def energy_by_app(self) -> Dict[int, float]:
        """Joules per app id, summed over users."""
        totals: Dict[int, float] = {}
        for result in self._results.values():
            for app, joules in result.energy_by_app().items():
                totals[app] = totals.get(app, 0.0) + joules
        return totals

    def bytes_by_app(self) -> Dict[int, int]:
        """Traffic bytes per app id, summed over users."""
        totals: Dict[int, int] = {}
        for trace in self.dataset:
            for app, volume in trace.packets.bytes_by_app().items():
                totals[app] = totals.get(app, 0) + volume
        return totals

    def energy_by_app_state(self) -> Dict[Tuple[int, int], float]:
        """Joules per (app id, process state), summed over users."""
        totals: Dict[Tuple[int, int], float] = {}
        for result in self._results.values():
            for key, joules in result.energy_by_app_state().items():
                totals[key] = totals.get(key, 0.0) + joules
        return totals

    def energy_by_state(self) -> Dict[int, float]:
        """Joules per process state, summed over apps and users."""
        totals: Dict[int, float] = {}
        for (_, state), joules in self.energy_by_app_state().items():
            totals[state] = totals.get(state, 0.0) + joules
        return totals

    # ------------------------------------------------------------------
    # Per-user / per-day reductions
    # ------------------------------------------------------------------
    def user_app_energy(self, user_id: int, app_id: int) -> float:
        """Joules attributed to one app on one device."""
        return self.user_result(user_id).energy_by_app().get(app_id, 0.0)

    def daily_energy(
        self, user_id: int, app_id: Optional[int] = None
    ) -> np.ndarray:
        """Per-day attributed joules for one user (optionally one app).

        Day ``d`` covers ``[d*86400, (d+1)*86400)`` seconds of study
        time; the returned array spans the full trace duration.
        """
        trace = self.dataset.user(user_id)
        result = self.user_result(user_id)
        n_days = int(np.ceil((trace.end - trace.start) / DAY))
        ts = trace.packets.timestamps
        energy = result.per_packet
        if app_id is not None:
            mask = trace.packets.apps == app_id
            ts = ts[mask]
            energy = energy[mask]
        days = ((ts - trace.start) // DAY).astype(np.int64)
        return np.bincount(days, weights=energy, minlength=n_days)[:n_days]

    def app_days_with_traffic(
        self, user_id: int, app_id: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(has-foreground-traffic, has-background-traffic) day masks.

        Foreground means packets labelled FOREGROUND or VISIBLE;
        background the other three states (the paper's grouping).
        """
        trace = self.dataset.user(user_id)
        n_days = int(np.ceil((trace.end - trace.start) / DAY))
        packets = trace.packets
        mask = packets.apps == app_id
        ts = packets.timestamps[mask]
        states = packets.states[mask]
        days = ((ts - trace.start) // DAY).astype(np.int64)
        fg_values = np.array([int(s) for s in FOREGROUND_STATES])
        bg_values = np.array([int(s) for s in BACKGROUND_STATES])
        fg = np.zeros(n_days, dtype=bool)
        bg = np.zeros(n_days, dtype=bool)
        fg_days = days[np.isin(states, fg_values)]
        bg_days = days[np.isin(states, bg_values)]
        fg[np.unique(fg_days)] = True
        bg[np.unique(bg_days)] = True
        return fg, bg

    def users_with_app(self, app_id: int) -> List[int]:
        """Users whose trace contains at least one packet of the app."""
        return [
            trace.user_id
            for trace in self.dataset
            if np.any(trace.packets.apps == app_id)
        ]
