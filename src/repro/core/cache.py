"""On-disk cache for per-user energy attribution.

Repeated analyses over the same saved study (different figures, report
re-runs, parameter sweeps that only touch the analysis layer) spend
most of their time recomputing the identical attribution. The cache
keys a study by ``(dataset fingerprint, radio model, tail policy)`` and
stores one small ``.npz`` per user holding only the tail-energy array
(the expensive multi-phase part) — packets are never duplicated on
disk, and transfer/promotion energies are recomputed in one cheap pass
on load (see :func:`repro.radio.attribution.result_from_payload`).

Any change to the packets (fingerprint), the model constants (frozen
dataclass repr) or the policy changes the key, so stale entries are
never read — they are simply orphaned and can be deleted wholesale by
removing the cache directory.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.radio.attribution import TailPolicy
from repro.radio.base import RadioModel
from repro.trace.arrays import PacketArray
from repro.trace.dataset import Dataset


def publish_file(tmp: Path, path: Path, keep_prev: bool = False) -> Path:
    """Atomically publish a fully-written ``tmp`` file at ``path``.

    The one rename idiom every on-disk artefact in this repo uses
    (attribution cache entries, stream checkpoints, store blobs):
    readers only ever see the old complete file or the new complete
    file, never a partial write. With ``keep_prev=True`` the previous
    good file is first rotated to ``<name>.prev`` — the checkpoint
    pattern (:meth:`repro.stream.checkpoint.StreamCheckpoint.save`)
    that lets readers fall back one generation when the final rename
    lands a torn file.
    """
    if keep_prev and path.exists():
        os.replace(path, path.with_name(path.name + ".prev"))
    tmp.replace(path)
    return path


def study_cache_key(
    dataset: Dataset, model: RadioModel, policy: TailPolicy
) -> str:
    """Digest identifying one (dataset, model, policy) attribution."""
    digest = hashlib.blake2b(digest_size=12)
    digest.update(dataset.fingerprint().encode("ascii"))
    digest.update(repr(model).encode("utf-8"))
    digest.update(policy.value.encode("ascii"))
    return digest.hexdigest()


class AttributionCache:
    """Per-user attribution payloads under one study key."""

    def __init__(self, directory: Union[str, Path], key: str) -> None:
        self.directory = Path(directory)
        self.key = key
        self.directory.mkdir(parents=True, exist_ok=True)

    @classmethod
    def for_study(
        cls,
        directory: Union[str, Path],
        dataset: Dataset,
        model: RadioModel,
        policy: TailPolicy,
    ) -> "AttributionCache":
        """Open the cache slot for one study's attribution."""
        return cls(directory, study_cache_key(dataset, model, policy))

    def path_for(self, user_id: int) -> Path:
        """Cache file for one user under this study key."""
        return self.directory / f"attr-{self.key}-u{user_id}.npz"

    def load(
        self, user_id: int, packets: PacketArray
    ) -> Optional[Dict[str, object]]:
        """The stored payload for one user, or ``None`` on any miss.

        A file whose arrays don't match the packet count (a truncated
        write, or a hash collision in principle) is treated as a miss,
        never an error — the caller recomputes and overwrites.
        """
        path = self.path_for(user_id)
        if not path.exists():
            return None
        try:
            with np.load(path) as archive:
                payload = {
                    "tail": archive["tail"],
                    "idle_energy": float(archive["idle_energy"]),
                    "window": tuple(archive["window"]),
                }
        except (OSError, KeyError, ValueError):
            return None
        if len(payload["tail"]) != len(packets):
            return None
        return payload

    def store(self, user_id: int, payload: Dict[str, object]) -> Path:
        """Persist one user's payload; atomic against concurrent readers."""
        path = self.path_for(user_id)
        tmp = path.with_suffix(".tmp.npz")
        np.savez(
            tmp,
            tail=payload["tail"],
            idle_energy=np.float64(payload["idle_energy"]),
            window=np.float64(payload["window"]),
        )
        return publish_file(tmp, path)
