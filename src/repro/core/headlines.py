"""Headline statistics and robustness sweeps.

Collects the paper's single-number findings into one structure (used by
the CLI report and the benches), and provides a seed-sweep harness to
quantify how sensitive each headline is to the synthetic study's random
realisation — the reproduction's analogue of confidence intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.accounting import StudyEnergy
from repro.core.readout import EnergyReadout, require_packet_detail
from repro.core.statefrac import background_energy_fraction
from repro.core.transitions import (
    first_minute_fractions,
    fraction_of_apps_above,
)
from repro.core.whatif import savings_on_affected_days, total_savings
from repro.errors import AnalysisError, StreamError, TraceError


@dataclass(frozen=True)
class Headline:
    """One headline statistic with its paper reference value."""

    key: str
    description: str
    paper_value: Optional[float]
    measured: float


def totals_headline_stats(readout: EnergyReadout) -> List[Headline]:
    """The totals-tier headlines — computable from any readout.

    The 84%-background split and Chrome's ~30% need only per-(app,
    state) energy totals, so a checkpoint-loaded ingest renders them
    byte-identically to the batch engine. The remaining headlines
    (first-minute criterion, what-if savings) replay packets;
    :func:`headline_stats` appends those. Sources whose registry has
    no Chrome at all (real traces, live windows) skip the Chrome line
    rather than fail — same rule as the Weibo headline below.
    """
    headlines = [
        Headline(
            "background_fraction",
            "fraction of network energy in background states",
            0.84,
            background_energy_fraction(readout),
        ),
    ]
    try:
        headlines.append(
            Headline(
                "chrome_background_fraction",
                "fraction of Chrome's energy in background states",
                0.30,
                background_energy_fraction(readout, "com.android.chrome"),
            )
        )
    except (AnalysisError, TraceError, StreamError):
        # Registry or app absent, or the app spent nothing in this
        # window (live folds) — nothing to measure.
        pass
    return headlines


def headline_stats(study: StudyEnergy) -> List[Headline]:
    """The paper's headline numbers, measured on ``study``."""
    require_packet_detail(study, "headline_stats")
    dataset = study.dataset
    fractions = first_minute_fractions(dataset)
    headlines = totals_headline_stats(study) + [
        Headline(
            "first_minute_apps",
            "fraction of apps with >=80% of bg bytes in the first minute",
            0.84,
            fraction_of_apps_above(fractions, 0.8),
        ),
        Headline(
            "kill_total_savings_pct",
            "kill-after-3-days total savings (%)",
            1.0,
            total_savings(study).overall_pct,
        ),
    ]
    try:
        headlines.append(
            Headline(
                "weibo_affected_days_pct",
                "Weibo users' total savings on policy-active days (%)",
                16.0,
                savings_on_affected_days(study, "com.sina.weibo"),
            )
        )
    except AnalysisError:
        pass  # small studies may never activate the policy
    return headlines


@dataclass(frozen=True)
class SweepResult:
    """One headline's distribution across seeds."""

    key: str
    values: Sequence[float]

    @property
    def mean(self) -> float:
        """Mean across seeds."""
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        """Standard deviation across seeds."""
        return float(np.std(self.values))

    @property
    def spread(self) -> float:
        """Max minus min across seeds."""
        return float(max(self.values) - min(self.values))


def seed_sweep(
    build_study: Callable[[int], StudyEnergy],
    seeds: Sequence[int],
) -> Dict[str, SweepResult]:
    """Measure every headline across several study seeds.

    ``build_study`` maps a seed to a :class:`StudyEnergy`; headlines
    that are unavailable at the given scale (e.g. the kill policy never
    activating) are skipped for that seed.
    """
    if not seeds:
        raise AnalysisError("at least one seed is required")
    collected: Dict[str, List[float]] = {}
    for seed in seeds:
        study = build_study(seed)
        for headline in headline_stats(study):
            collected.setdefault(headline.key, []).append(headline.measured)
    return {
        key: SweepResult(key, tuple(values)) for key, values in collected.items()
    }
