"""Plain-text rendering of every figure and table.

No plotting dependency is available offline, so figures are rendered as
aligned text tables / series (CSV-friendly), one renderer per paper
artefact. The benchmark harness prints these, and EXPERIMENTS.md embeds
them.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.accounting import StudyEnergy
from repro.core.casestudies import CaseStudyRow
from repro.core.popularity import ConsumerRow
from repro.core.statefrac import STATE_ORDER
from repro.core.transitions import PersistenceSample, persistence_cdf, TimelineView
from repro.core.whatif import KillPolicyResult
from repro.trace.events import ProcessState
from repro.units import MB


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Align a table of stringifiable cells."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def format_duration(seconds: float) -> str:
    """Compact human duration."""
    if seconds < 120:
        return f"{seconds:.0f}s"
    if seconds < 7200:
        return f"{seconds / 60:.0f}min"
    if seconds < 2 * 86400:
        return f"{seconds / 3600:.1f}h"
    return f"{seconds / 86400:.1f}d"


# ----------------------------------------------------------------------
# Figures
# ----------------------------------------------------------------------
def render_fig1(counts: Dict[str, int]) -> str:
    """Fig 1: top-10 appearance counts."""
    return render_table(
        ["app", "users_with_app_in_top10"],
        [(name, c) for name, c in counts.items()],
        title="Figure 1: apps in >=2 users' top-10 (by data consumption)",
    )


def render_fig2(
    by_energy: List[ConsumerRow], by_data: List[ConsumerRow]
) -> str:
    """Fig 2: top data and energy consumers."""
    energy_part = render_table(
        ["app", "kJ", "MB", "J/MB"],
        [
            (r.app, r.total_energy / 1e3, r.total_bytes / MB, r.joules_per_mb)
            for r in by_energy
        ],
        title="Figure 2a: top network energy consumers",
    )
    data_part = render_table(
        ["app", "MB", "kJ", "J/MB"],
        [
            (r.app, r.total_bytes / MB, r.total_energy / 1e3, r.joules_per_mb)
            for r in by_data
        ],
        title="Figure 2b: top cellular data consumers",
    )
    return energy_part + "\n\n" + data_part


def render_fig3(fractions: Dict[str, Dict[ProcessState, float]]) -> str:
    """Fig 3: per-app energy fraction in each process state."""
    headers = ["app"] + [s.name.lower() for s in STATE_ORDER] + ["bg_total"]
    rows = []
    for app, by_state in fractions.items():
        bg = sum(
            f
            for s, f in by_state.items()
            if s
            in (ProcessState.PERCEPTIBLE, ProcessState.SERVICE, ProcessState.BACKGROUND)
        )
        rows.append(
            [app] + [f"{by_state[s] * 100:.1f}%" for s in STATE_ORDER] + [f"{bg * 100:.1f}%"]
        )
    return render_table(
        headers, rows, title="Figure 3: fraction of network energy per process state"
    )


def render_fig4(view: TimelineView, bin_seconds: float = 10.0) -> str:
    """Fig 4: one transition's traffic timeline, as binned byte counts."""
    lo = float(view.times.min()) if len(view.times) else 0.0
    hi = float(view.times.max()) if len(view.times) else 1.0
    edges = np.arange(np.floor(lo / bin_seconds), np.ceil(hi / bin_seconds) + 1)
    rows = []
    for left in edges * bin_seconds:
        mask = (view.times >= left) & (view.times < left + bin_seconds)
        if not mask.any():
            continue
        volume = int(view.sizes[mask].sum())
        phase = "background" if left >= 0 else "foreground"
        rows.append((f"{left:+.0f}s", volume, phase))
    return render_table(
        ["t_rel_transition", "bytes", "phase"],
        rows,
        title=(
            f"Figure 4: {view.app} (user {view.user_id}) traffic around a "
            "foreground->background transition"
        ),
    )


def render_fig5(
    samples: List[PersistenceSample], quantiles: Sequence[float] = (
        0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0
    )
) -> str:
    """Fig 5: persistence-duration CDF at the given quantiles."""
    durations, fractions = persistence_cdf(samples)
    rows = []
    for q in quantiles:
        idx = min(int(np.ceil(q * len(durations))) - 1, len(durations) - 1)
        rows.append((f"p{q * 100:g}", format_duration(float(durations[max(idx, 0)]))))
    return render_table(
        ["quantile", "persistence"],
        rows,
        title=(
            "Figure 5: duration traffic continues after backgrounding "
            f"({len(samples)} transitions)"
        ),
    )


def render_fig6(
    edges: np.ndarray, totals: np.ndarray, rows_limit: int = 40
) -> str:
    """Fig 6: background bytes vs time since foreground, with a coarse
    log-ish re-binning for readability."""
    # Re-bin: 10 s bins for the first 2 min, then 60 s to 15 min, then 5 min.
    boundaries = np.concatenate(
        [
            np.arange(0, 120, 10),
            np.arange(120, 900, 60),
            np.arange(900, edges[-1] + 1, 300),
        ]
    )
    rows = []
    for i in range(len(boundaries) - 1):
        lo, hi = boundaries[i], boundaries[i + 1]
        mask = (edges >= lo) & (edges < hi)
        volume = float(totals[mask].sum())
        rows.append((format_duration(lo), format_duration(hi), f"{volume / MB:.2f}"))
        if len(rows) >= rows_limit:
            break
    return render_table(
        ["from", "to", "MB"],
        rows,
        title="Figure 6: background bytes vs time since leaving foreground",
    )


# ----------------------------------------------------------------------
# Tables
# ----------------------------------------------------------------------
def render_table1(rows: List[CaseStudyRow]) -> str:
    """Table 1: case studies."""
    out_rows = []
    last_class = None
    for row in rows:
        cls = row.app_class if row.app_class != last_class else ""
        last_class = row.app_class
        out_rows.append(
            (
                cls,
                row.app,
                f"{row.joules_per_day:.0f}",
                f"{row.joules_per_flow:.1f}",
                f"{row.mb_per_flow:.2f}",
                f"{row.joules_per_mb:.2f}",
                row.update_frequency.describe(),
            )
        )
    return render_table(
        ["class", "app", "J/day", "J/flow", "MB/flow", "J/MB", "update freq"],
        out_rows,
        title="Table 1: background-transfer case studies",
    )


def render_table2(results: List[KillPolicyResult]) -> str:
    """Table 2: kill-after-N-idle-days simulation."""
    headers = ["row"] + [r.app.split(".")[-1] for r in results]
    rows = [
        ["A: % days only bg traffic"]
        + [f"{r.pct_background_only_days:.0f}" for r in results],
        ["B: max consecutive bg days"]
        + [str(r.max_consecutive_background_days) for r in results],
        [f"C: kill@{results[0].idle_days}d avg % energy cut"]
        + [f"{r.avg_energy_reduction_pct:.1f}" for r in results],
    ]
    return render_table(
        headers, rows, title="Table 2: preemptively killing idle background apps"
    )


def render_policy_table(result) -> str:
    """Table-2-style rendering of any counterfactual policy's effect.

    Takes a :class:`repro.policy.PolicyResult`: per-app rows (when the
    evaluation broke apps out) and the study-wide summary, under any
    radio model.
    """
    lines = []
    if result.app_rows:
        headers = ["row"] + [r.app.split(".")[-1] for r in result.app_rows]
        rows = [
            ["users with app energy"]
            + [str(r.users) for r in result.app_rows],
            ["app energy before (kJ)"]
            + [f"{r.energy_before / 1e3:.1f}" for r in result.app_rows],
            ["avg % energy cut"]
            + [f"{r.avg_reduction_pct:.1f}" for r in result.app_rows],
            ["overall % energy cut"]
            + [f"{r.overall_pct:.1f}" for r in result.app_rows],
        ]
        lines.append(
            render_table(
                headers,
                rows,
                title=f"Policy {result.policy} on {result.model}: per-app effect",
            )
        )
        lines.append("")
    savings = result.savings
    lines.append(
        f"Policy {result.policy} on {result.model}, study-wide:\n"
        f"  energy saved: {savings.overall_pct:.2f}% of attributed total "
        f"(mean per-user {savings.mean_user_pct:.2f}%)\n"
        f"  packets dropped: {result.dropped_packets} "
        f"({result.dropped_bytes} bytes)\n"
        f"  packets delayed: {result.moved_packets} "
        f"(mean added delay {result.mean_delay:.0f}s)"
    )
    return "\n".join(lines)


def render_headlines(stats: Dict[str, float]) -> str:
    """Key single-number findings, name -> value."""
    return render_table(
        ["statistic", "value"],
        [(k, v) for k, v in stats.items()],
        title="Headline statistics",
    )


def render_bars(
    values: Sequence[float],
    labels: Sequence[str],
    width: int = 40,
    title: Optional[str] = None,
) -> str:
    """Horizontal ASCII bar chart (terminal-friendly figure rendering)."""
    if len(values) != len(labels):
        raise ValueError("values and labels must have equal length")
    values = [max(float(v), 0.0) for v in values]
    peak = max(values) if values else 0.0
    label_width = max((len(l) for l in labels), default=0)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * (int(round(width * value / peak)) if peak > 0 else 0)
        lines.append(f"{label.ljust(label_width)}  {bar}")
    return "\n".join(lines)


def render_persistence_table(stats: Sequence) -> str:
    """Per-app persistence summary (Fig 5 as a table)."""
    return render_table(
        ["app", "transitions", "median", "p90", "max"],
        [
            (
                s.app,
                s.transitions,
                format_duration(s.median_persistence),
                format_duration(s.p90_persistence),
                format_duration(s.max_persistence),
            )
            for s in stats
        ],
        title="Traffic persistence after backgrounding, per app",
    )
