"""The tiered energy-readout abstraction.

Every headline figure and table of the paper (Figs 1-3, Table 1, the
84%-background split) is a reduction over *keyed totals*: joules per
app, per (app, state), bytes per app, idle floors. Both engines
produce those totals — the in-memory batch
:class:`~repro.core.accounting.StudyEnergy` and the bounded-memory
:class:`~repro.stream.StreamIngestor` — with bit-identical float
arithmetic (the carry-first bincount replay). This module gives the
analyses one surface over both:

* :class:`EnergyReadout` — the totals-tier protocol. Implemented by
  ``StudyEnergy`` (which additionally has per-packet arrays) and by
  :class:`TotalsReadout` (which does not).
* :class:`TotalsReadout` — a concrete totals-only readout built from
  per-user :class:`UserTotalsView` dicts; the base class of
  :class:`~repro.stream.StreamResult` and the object
  :func:`readout_from_checkpoint` returns for a finished
  ``repro ingest`` checkpoint. Its ``has_packet_detail`` is ``False``.
* :func:`require_packet_detail` — the guard per-packet analyses
  (transitions, timelines, what-if replay, Figs 4-6) call first, so a
  totals-only readout fails fast with a typed, actionable
  :class:`~repro.errors.NeedsPacketDetail` instead of an
  ``AttributeError`` three reductions deep.
* :class:`KeyedTotals` — the one keyed accumulator both engines share
  (float64 carry-first bincount; int64 exact addition), and
  :func:`merge_keyed_totals`, the one study-wide fold.

Table 1 needs more than totals (flows per app, burst intervals); that
is the *cadence* tier: :class:`AppCadence` summaries that the batch
engine computes from packets on demand and the streaming engine tracks
incrementally at the paper's default gaps (see
:class:`repro.stream.ingest.CadenceTracker`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    Iterable,
    List,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

import numpy as np

from repro import units
from repro.core.periodicity import (
    DEFAULT_BURST_GAP,
    UpdateFrequency,
    frequency_from_intervals,
)
from repro.errors import NeedsPacketDetail, StreamError
from repro.trace.dataset import AppRegistry
from repro.trace.events import background_state_values

#: Default flow idle timeout for the cadence tier (Table 1's 1 h gap:
#: the case-study apps hold connections across several updates).
DEFAULT_FLOW_GAP = 3600.0

#: App-state keys are combined as ``app * _STATE_BASE + state``.
_STATE_BASE = 256

_BG_VALUES = frozenset(int(v) for v in background_state_values())


def combined_app_state_keys(
    apps: np.ndarray, states: np.ndarray
) -> np.ndarray:
    """Combine app/state arrays into the shared ``app*256+state`` keys."""
    return np.asarray(apps, np.int64) * _STATE_BASE + np.asarray(
        states, np.int64
    )


def combine_app_state(app_id: int, state: int) -> int:
    """Combine one (app id, state) pair into its shared scalar key."""
    return int(app_id) * _STATE_BASE + int(state)


def merge_keyed_totals(parts, zero=0.0):
    """Fold per-user keyed totals into one dict, order-preserving.

    ``parts`` yields mappings (one per user, in a fixed order); each
    mapping's items are folded with ``totals[k] = totals.get(k, zero) + v``
    in that mapping's own iteration order. This is the exact addition
    sequence :class:`~repro.core.accounting.StudyEnergy` has always
    used for its study-wide roll-ups — every readout replays it, so
    batch, streaming and checkpoint-loaded totals land on bit-identical
    study-wide floats.
    """
    totals = {}
    for part in parts:
        for key, value in part.items():
            totals[key] = totals.get(key, zero) + value
    return totals


class KeyedTotals:
    """The shared streaming per-key accumulator, float or int.

    **float64** (default): ``np.bincount`` accumulates its weights
    sequentially in input-array order, and the batch path's per-key
    sums are exactly one bincount over the whole trace
    (:meth:`~repro.radio.attribution.AttributionResult._group_sum`).
    Adding the running totals as *leading pseudo-entries* of the next
    chunk's bincount therefore replays the whole-trace addition
    sequence exactly: each key's partial enters first, then its chunk
    values in order, and ``0.0 + x == x`` keeps the very first chunk
    unperturbed. That makes the accumulated totals bit-identical to
    the batch result for any chunk sizes.

    **int64**: integer addition is associative, so no ordering trick is
    needed — any chunking lands on the identical integers the batch
    :meth:`~repro.trace.index.TraceIndex.bytes_by_app` reduction
    computes. ``np.add.at`` keeps repeated keys within a chunk exact
    (bincount weights would detour through float64).
    """

    def __init__(
        self,
        keys: Optional[np.ndarray] = None,
        values: Optional[np.ndarray] = None,
        dtype=np.float64,
    ) -> None:
        self.dtype = np.dtype(dtype)
        if self.dtype not in (np.dtype(np.float64), np.dtype(np.int64)):
            raise ValueError(f"KeyedTotals supports float64/int64, got {dtype}")
        self._keys = (
            np.empty(0, dtype=np.int64)
            if keys is None
            else np.asarray(keys, dtype=np.int64)
        )
        self._values = (
            np.empty(0, dtype=self.dtype)
            if values is None
            else np.asarray(values, dtype=self.dtype)
        )

    def add(self, keys: np.ndarray, amounts: np.ndarray) -> None:
        """Accumulate ``amounts`` grouped by ``keys`` (one chunk)."""
        if len(keys) == 0:
            return
        all_keys = np.concatenate([self._keys, np.asarray(keys, np.int64)])
        all_amounts = np.concatenate(
            [self._values, np.asarray(amounts, self.dtype)]
        )
        uniq, inverse = np.unique(all_keys, return_inverse=True)
        if self.dtype == np.dtype(np.float64):
            sums = np.bincount(
                inverse, weights=all_amounts, minlength=len(uniq)
            )
        else:
            sums = np.zeros(len(uniq), dtype=np.int64)
            np.add.at(sums, inverse, all_amounts)
        self._keys = uniq
        self._values = sums

    def as_dict(self) -> Dict[int, float]:
        """Totals keyed by int, in sorted-key order (the batch order)."""
        cast = float if self.dtype == np.dtype(np.float64) else int
        return {int(k): cast(v) for k, v in zip(self._keys, self._values)}

    def payload(self) -> Tuple[np.ndarray, np.ndarray]:
        """(keys, values) arrays for checkpoint serialisation."""
        return self._keys.copy(), self._values.copy()

    def __len__(self) -> int:
        return len(self._keys)


def require_packet_detail(source, analysis: str):
    """Assert ``source`` carries per-packet arrays; return it.

    Per-packet analyses call this on entry. Objects that do not declare
    ``has_packet_detail`` (a :class:`~repro.trace.dataset.Dataset`, a
    :class:`~repro.core.accounting.StudyEnergy`) pass through; a
    totals-only readout raises :class:`~repro.errors.NeedsPacketDetail`
    naming the analysis and the fix.
    """
    if getattr(source, "has_packet_detail", True):
        return source
    raise NeedsPacketDetail(
        analysis, f"input is a totals-only {type(source).__name__}"
    )


class UserTotalsView:
    """One user's totals-tier readout (keyed dicts, no packets).

    Energy dicts iterate in sorted-combined-key order — the order
    :meth:`~repro.radio.attribution.AttributionResult._group_sum`
    produces and :class:`KeyedTotals` preserves — so any sequential
    fold over them performs the same float additions on every readout.
    """

    def __init__(
        self,
        user_id: int,
        energy: Dict[int, float],
        app_state: Dict[int, float],
        bytes_state: Dict[int, int],
        idle_energy: float,
    ) -> None:
        self.user_id = user_id
        self.idle_energy = idle_energy
        self._energy = energy
        #: combined ``app * 256 + state`` -> joules
        self._app_state = app_state
        #: combined ``app * 256 + state`` -> bytes
        self._bytes_state = bytes_state

    def energy_by_app(self) -> Dict[int, float]:
        """Joules per app id."""
        return dict(self._energy)

    def energy_by_app_state(self) -> Dict[Tuple[int, int], float]:
        """Joules per (app id, process state)."""
        return {
            (k // _STATE_BASE, k % _STATE_BASE): v
            for k, v in self._app_state.items()
        }

    def bytes_by_app_state(self) -> Dict[Tuple[int, int], int]:
        """Traffic bytes per (app id, process state), exact integers."""
        return {
            (k // _STATE_BASE, k % _STATE_BASE): v
            for k, v in self._bytes_state.items()
        }

    def bytes_by_app(self) -> Dict[int, int]:
        """Traffic bytes per app id (exact integers)."""
        totals: Dict[int, int] = {}
        for k, v in self._bytes_state.items():
            app = k // _STATE_BASE
            totals[app] = totals.get(app, 0) + v
        return totals

    def background_energy(self, app_id: int) -> float:
        """Joules of one app in background states, folded in key order."""
        total = 0.0
        for k, v in self._app_state.items():
            if k // _STATE_BASE == app_id and k % _STATE_BASE in _BG_VALUES:
                total += v
        return total

    def background_bytes(self, app_id: int) -> int:
        """Bytes of one app in background states (exact integer)."""
        total = 0
        for k, v in self._bytes_state.items():
            if k // _STATE_BASE == app_id and k % _STATE_BASE in _BG_VALUES:
                total += v
        return total


@dataclass(frozen=True)
class ReadoutProvenance:
    """What produced a readout: source fingerprint, model, policy.

    The identity triple the results store (:mod:`repro.store`) keys
    rendered artefacts by. ``fingerprint`` is
    :meth:`~repro.trace.dataset.Dataset.fingerprint` for a batch
    study and the checkpoint's source signature for an ingest readout;
    ``model`` is the frozen model dataclass ``repr``; ``policy`` the
    tail-policy value — the exact triple the attribution disk cache
    has always keyed by.
    """

    fingerprint: str
    model: str
    policy: str

    def short(self) -> str:
        """A 12-hex abbreviation of the fingerprint for display."""
        return self.fingerprint[:12]


@dataclass(frozen=True)
class UserCadence:
    """One user's background cadence for one app.

    Present only for users with at least one background packet of the
    app (the batch inclusion rule). ``intervals`` are the inter-burst
    intervals in chronological order; an empty array means a single
    burst with no successor.
    """

    user_id: int
    n_flows: int
    n_bursts: int
    intervals: np.ndarray


@dataclass(frozen=True)
class AppCadence:
    """Background flow/burst cadence of one app across all users.

    The per-packet-free inputs of Table 1's J/flow, MB/flow and
    update-frequency columns. ``per_user`` is in readout order.
    """

    app_id: int
    flow_gap: float
    burst_gap: float
    per_user: Tuple[UserCadence, ...]

    @property
    def n_users(self) -> int:
        """Users with background traffic for the app."""
        return len(self.per_user)

    @property
    def n_flows(self) -> int:
        """Background flows over all users (``flow_gap`` idle split)."""
        return sum(u.n_flows for u in self.per_user)

    def update_frequency(
        self, max_interval: Optional[float] = 24 * 3600.0
    ) -> UpdateFrequency:
        """Pooled cadence summary, identical to the batch estimator."""
        return frequency_from_intervals(
            (u.intervals for u in self.per_user),
            sum(u.n_bursts for u in self.per_user),
            max_interval,
        )


@runtime_checkable
class EnergyReadout(Protocol):
    """The totals-tier analysis surface both engines implement.

    ``StudyEnergy`` (batch; ``has_packet_detail=True``) and
    :class:`TotalsReadout` (streaming result / loaded checkpoint;
    ``has_packet_detail=False``) both satisfy this protocol, and every
    totals-tier analysis in :mod:`repro.core` is typed against it.
    """

    has_packet_detail: bool

    @property
    def user_ids(self) -> List[int]: ...

    @property
    def total_energy(self) -> float: ...

    @property
    def attributed_energy(self) -> float: ...

    @property
    def idle_energy(self) -> float: ...

    def energy_by_app(self) -> Dict[int, float]: ...

    def bytes_by_app(self) -> Dict[int, int]: ...

    def energy_by_app_state(self) -> Dict[Tuple[int, int], float]: ...

    def energy_by_state(self) -> Dict[int, float]: ...

    def app_id(self, app: str) -> int: ...

    def app_name(self, app_id: int) -> str: ...

    def app_category(self, app_id: int) -> str: ...

    def duration_days(self, user_id: int) -> float: ...

    def user_totals(self, user_id: int) -> UserTotalsView: ...

    def background_cadence(
        self,
        app_id: int,
        flow_gap: float = DEFAULT_FLOW_GAP,
        burst_gap: float = DEFAULT_BURST_GAP,
    ) -> AppCadence: ...


class TotalsReadout:
    """Concrete totals-only :class:`EnergyReadout`.

    Base class of :class:`~repro.stream.StreamResult` and the object a
    loaded checkpoint becomes. Study-wide reductions replay the exact
    fold :class:`~repro.core.accounting.StudyEnergy` performs — users
    in readout order through :func:`merge_keyed_totals`, idle via a
    sequential ``sum`` — so each is bit-identical to its batch
    counterpart. ``attributed_energy`` is the one exception: the batch
    scalar sums per-packet arrays whole, an association no totals
    readout can replay, so here it is defined as the fold of the
    (bit-identical) per-app totals.
    """

    has_packet_detail = False

    def __init__(
        self,
        totals: Iterable[UserTotalsView],
        *,
        registry: Optional[AppRegistry] = None,
        windows: Optional[Dict[int, Tuple[float, float]]] = None,
        cadences: Optional[
            Dict[int, Dict[int, Tuple[int, int, np.ndarray]]]
        ] = None,
        flow_gap: float = DEFAULT_FLOW_GAP,
        burst_gap: float = DEFAULT_BURST_GAP,
        provenance: Optional[ReadoutProvenance] = None,
    ) -> None:
        self._totals = list(totals)
        self._totals_by_id = {t.user_id: t for t in self._totals}
        self._registry = registry
        self._windows = dict(windows) if windows is not None else {}
        self._cadences = cadences
        self._flow_gap = float(flow_gap)
        self._burst_gap = float(burst_gap)
        #: What produced this readout, when known — the identity the
        #: results store (:mod:`repro.store`) keys artefacts by.
        #: ``None`` for hand-assembled readouts, which cannot be keyed.
        self.provenance = provenance

    # ------------------------------------------------------------------
    # Users
    # ------------------------------------------------------------------
    @property
    def user_ids(self) -> List[int]:
        """User ids in readout (ingestion) order."""
        return [t.user_id for t in self._totals]

    def user_totals(self, user_id: int) -> UserTotalsView:
        """One user's totals-tier view."""
        try:
            return self._totals_by_id[user_id]
        except KeyError:
            raise StreamError(f"unknown user id {user_id}") from None

    def duration_days(self, user_id: int) -> float:
        """Observation window length in days."""
        window = self._windows.get(user_id)
        if window is None:
            raise StreamError(
                f"readout has no observation window for user {user_id}"
            )
        start, end = window
        return units.days(end - start)

    # ------------------------------------------------------------------
    # App registry
    # ------------------------------------------------------------------
    @property
    def registry(self) -> AppRegistry:
        """The study's app registry."""
        if self._registry is None:
            raise StreamError("readout carries no app registry")
        return self._registry

    def app_id(self, app: str) -> int:
        """Resolve an app name to its numeric id."""
        return self.registry.id_of(app)

    def app_name(self, app_id: int) -> str:
        """Resolve a numeric app id to its name."""
        return self.registry.name_of(app_id)

    def app_category(self, app_id: int) -> str:
        """Category of the app with id ``app_id``."""
        return self.registry.by_id(app_id).category

    # ------------------------------------------------------------------
    # Totals
    # ------------------------------------------------------------------
    def energy_by_app(self) -> Dict[int, float]:
        """Joules per app id, summed over users."""
        return merge_keyed_totals(t.energy_by_app() for t in self._totals)

    def energy_by_app_state(self) -> Dict[Tuple[int, int], float]:
        """Joules per (app id, process state), summed over users."""
        return merge_keyed_totals(
            t.energy_by_app_state() for t in self._totals
        )

    def energy_by_state(self) -> Dict[int, float]:
        """Joules per process state, summed over apps and users."""
        return merge_keyed_totals(
            {state: joules}
            for (_, state), joules in self.energy_by_app_state().items()
        )

    def bytes_by_app(self) -> Dict[int, int]:
        """Traffic bytes per app id, summed over users."""
        return merge_keyed_totals(
            (t.bytes_by_app() for t in self._totals), zero=0
        )

    @property
    def idle_energy(self) -> float:
        """Unattributed idle-floor energy over all users, joules."""
        return sum(t.idle_energy for t in self._totals)

    @property
    def attributed_energy(self) -> float:
        """Energy attributed to apps (fold of the per-app totals)."""
        return sum(self.energy_by_app().values())

    @property
    def total_energy(self) -> float:
        """Attributed plus idle energy, joules."""
        return self.attributed_energy + self.idle_energy

    # ------------------------------------------------------------------
    # Cadence tier
    # ------------------------------------------------------------------
    def background_cadence(
        self,
        app_id: int,
        flow_gap: float = DEFAULT_FLOW_GAP,
        burst_gap: float = DEFAULT_BURST_GAP,
    ) -> AppCadence:
        """One app's stored background cadence (default gaps only).

        The streaming engine tracks flows and bursts at the paper's
        default gaps while packets go by; asking for other gaps — or
        for cadence an ingest ran without — needs the packets back.
        """
        if self._cadences is None:
            raise NeedsPacketDetail(
                f"background_cadence(app={app_id})",
                "the ingest ran with cadence tracking disabled",
            )
        if flow_gap != self._flow_gap or burst_gap != self._burst_gap:
            raise NeedsPacketDetail(
                f"background_cadence(app={app_id}, flow_gap={flow_gap}, "
                f"burst_gap={burst_gap})",
                f"cadence was tracked at flow_gap={self._flow_gap}, "
                f"burst_gap={self._burst_gap}",
            )
        per_user = []
        for totals in self._totals:
            entry = self._cadences.get(totals.user_id, {}).get(app_id)
            if entry is not None:
                n_flows, n_bursts, intervals = entry
                per_user.append(
                    UserCadence(totals.user_id, n_flows, n_bursts, intervals)
                )
        return AppCadence(app_id, flow_gap, burst_gap, tuple(per_user))


class WindowedTotalsReadout(TotalsReadout):
    """A rolling-window slice of the stream as a first-class readout.

    Built by :class:`repro.follow.WindowRing` from the buckets of one
    sealed window: the same :class:`UserTotalsView` per user (folded
    bucket-by-bucket through :func:`merge_keyed_totals`), so every
    totals-tier analysis and every renderer in
    :data:`repro.store.render.ANALYSES` works on it unchanged. Idle
    energy is 0.0 — tails are only final when the stream ends, so a
    live window reports attributed energy only. Cadence is ``None``
    (windows carry no flow/burst history), so Table 1 correctly
    refuses with :class:`~repro.errors.NeedsPacketDetail`.
    """

    def __init__(
        self,
        totals: Iterable[UserTotalsView],
        *,
        window_name: str,
        window_start: float,
        window_end: float,
        registry: Optional[AppRegistry] = None,
        provenance: Optional[ReadoutProvenance] = None,
    ) -> None:
        span = (float(window_start), float(window_end))
        totals = list(totals)
        super().__init__(
            totals,
            registry=registry,
            windows={t.user_id: span for t in totals},
            cadences=None,
            provenance=provenance,
        )
        #: Which configured window this is (``"hour"``, ``"day"``, ...).
        self.window_name = str(window_name)
        #: Wall-clock (trace-time) bounds of the window, seconds.
        self.window_start, self.window_end = span


def readout_from_checkpoint(path) -> TotalsReadout:
    """Load a finished ingest checkpoint as a totals-tier readout.

    The whole point of the protocol: a completed (or resumed-to-
    completion) ``repro ingest --checkpoint ck.npz`` run becomes a
    first-class analysis input — ``repro figure fig3 --from-checkpoint
    ck.npz`` — without ever materialising a packet array. Checkpoints
    whose users are not all ``done`` raise
    :class:`~repro.errors.StreamError` with the resume hint; files
    older than checkpoint format 2 (no registry/window/cadence members)
    must be re-ingested.
    """
    # Imported here, not at module top: repro.stream.ingest imports this
    # module for KeyedTotals, and importing the stream package from here
    # at import time would close that cycle.
    from repro.stream.checkpoint import StreamCheckpoint

    checkpoint = StreamCheckpoint.load(path)
    return readout_from_loaded_checkpoint(checkpoint)


def readout_from_loaded_checkpoint(checkpoint) -> TotalsReadout:
    """Build the readout from an already-loaded ``StreamCheckpoint``."""
    shard = getattr(checkpoint, "shard", None)
    if shard is not None:
        raise StreamError(
            f"checkpoint covers shard {shard.get('index')} of "
            f"{shard.get('of')} — it holds only that shard's users; "
            "merge the plan's shards with `repro shard merge` and "
            "analyse the merged checkpoint"
        )
    if checkpoint.registry_json is None:
        raise StreamError(
            "checkpoint predates format 2 (no app registry); re-run "
            "`repro ingest` to write an analysable checkpoint"
        )
    not_done = [u.user_id for u in checkpoint.users if u.status != "done"]
    if not_done:
        raise StreamError(
            f"checkpoint is mid-run ({len(checkpoint.users) - len(not_done)}"
            f" of {len(checkpoint.users)} users done); finish the ingest "
            "with `repro ingest --resume` before analysing it"
        )
    registry = AppRegistry.from_json(checkpoint.registry_json)
    totals = []
    windows: Dict[int, Tuple[float, float]] = {}
    cadences: Optional[Dict[int, Dict[int, Tuple[int, int, np.ndarray]]]]
    cadences = {} if checkpoint.has_cadence else None
    for user in checkpoint.users:
        uid = user.user_id
        if user.window is None:
            raise StreamError(
                f"checkpoint has no observation window for user {uid}; "
                "re-run `repro ingest` to write an analysable checkpoint"
            )
        windows[uid] = (float(user.window[0]), float(user.window[1]))
        energy = KeyedTotals(user.energy_keys, user.energy_values)
        app_state = KeyedTotals(user.state_keys, user.state_values)
        bytes_state = KeyedTotals(
            user.bytes_keys, user.bytes_values, dtype=np.int64
        )
        totals.append(
            UserTotalsView(
                uid,
                energy.as_dict(),
                app_state.as_dict(),
                bytes_state.as_dict(),
                float(user.idle_energy),
            )
        )
        if cadences is not None:
            per_app: Dict[int, Tuple[int, int, np.ndarray]] = {}
            cad = user.cadence or {}
            apps = np.asarray(
                cad.get("burst_apps", np.empty(0, np.int64)), np.int64
            )
            counts = np.asarray(
                cad.get("burst_counts", np.empty(0, np.int64)), np.int64
            )
            flow_counts = {
                int(a): int(c)
                for a, c in zip(
                    cad.get("flow_count_apps", np.empty(0, np.int64)),
                    cad.get("flow_counts", np.empty(0, np.int64)),
                )
            }
            offsets = np.asarray(
                cad.get("interval_offsets", np.zeros(1, np.int64)), np.int64
            )
            intervals = np.asarray(
                cad.get("intervals", np.empty(0, np.float64)), np.float64
            )
            for i, app in enumerate(apps):
                app = int(app)
                lo, hi = int(offsets[i]), int(offsets[i + 1])
                per_app[app] = (
                    int(flow_counts.get(app, 0)),
                    int(counts[i]),
                    intervals[lo:hi].copy(),
                )
            cadences[uid] = per_app
    return TotalsReadout(
        totals,
        registry=registry,
        windows=windows,
        cadences=cadences,
        flow_gap=checkpoint.cadence_flow_gap,
        burst_gap=checkpoint.cadence_burst_gap,
        provenance=ReadoutProvenance(
            fingerprint=checkpoint.signature,
            model=checkpoint.model_repr,
            policy=checkpoint.policy_value,
        ),
    )
