"""The paper's analyses.

One module per result:

* :mod:`repro.core.readout`     -- the tiered :class:`EnergyReadout`
  protocol: keyed totals both engines share, the totals-only
  :class:`TotalsReadout` (checkpoint-loaded analyses) and the
  ``require_packet_detail`` guard.
* :mod:`repro.core.accounting`  -- study-wide energy accounting (the
  substrate every analysis shares).
* :mod:`repro.core.popularity`  -- Fig 1 (top-10 appearance counts) and
  Fig 2 (top data/energy consumers).
* :mod:`repro.core.statefrac`   -- Fig 3 (energy by process state) and
  the 84%-background headline.
* :mod:`repro.core.transitions` -- §4.1: Fig 4 (timeline), Fig 5
  (persistence CDF), Fig 6 (bytes vs time since foreground), and the
  first-minute criterion.
* :mod:`repro.core.periodicity` -- update-interval estimation for
  Table 1's "Update frequency" column.
* :mod:`repro.core.casestudies` -- Table 1 (J/day, J/flow, MB/flow,
  J/MB per case-study app).
* :mod:`repro.core.whatif`      -- §5: Table 2 (kill idle background
  apps) plus Doze-like and batching extensions.
* :mod:`repro.core.report`      -- plain-text rendering of every figure
  and table.
"""

from repro.core.accounting import StudyEnergy
from repro.core.readout import (
    AppCadence,
    EnergyReadout,
    KeyedTotals,
    TotalsReadout,
    UserCadence,
    UserTotalsView,
    merge_keyed_totals,
    readout_from_checkpoint,
    require_packet_detail,
)
from repro.core.popularity import (
    category_energy,
    top10_appearance_counts,
    top_consumers,
    ConsumerRow,
)
from repro.core.statefrac import (
    background_energy_fraction,
    state_energy_fractions,
    state_energy_share,
)
from repro.core.transitions import (
    TransitionStats,
    bytes_since_foreground,
    first_minute_fractions,
    fraction_of_apps_above,
    persistence_cdf,
    persistence_durations,
    trace_timeline,
)
from repro.core.periodicity import UpdateFrequency, estimate_update_frequency
from repro.core.casestudies import CaseStudyRow, case_study_row, case_study_table
from repro.core.appreport import AppReport, app_report, render_app_report
from repro.core.headlines import (
    Headline,
    SweepResult,
    headline_stats,
    seed_sweep,
    totals_headline_stats,
)
from repro.core.longitudinal import (
    EraComparison,
    WeeklySeries,
    era_comparison,
    improved_apps,
    weekly_background_energy,
)
from repro.core.recommend import (
    Diagnosis,
    Recommendation,
    recommend,
    recommendation_report,
)
from repro.core.whatif import (
    CoalescingResult,
    KillPolicyResult,
    batching_savings,
    doze_savings,
    frequency_cap_savings,
    kill_policy_savings,
    os_coalescing_savings,
    savings_on_affected_days,
    total_savings,
)

__all__ = [
    "AppReport",
    "CaseStudyRow",
    "app_report",
    "case_study_row",
    "fraction_of_apps_above",
    "persistence_cdf",
    "render_app_report",
    "savings_on_affected_days",
    "CoalescingResult",
    "Diagnosis",
    "frequency_cap_savings",
    "os_coalescing_savings",
    "EraComparison",
    "Headline",
    "SweepResult",
    "headline_stats",
    "seed_sweep",
    "Recommendation",
    "WeeklySeries",
    "era_comparison",
    "improved_apps",
    "recommend",
    "recommendation_report",
    "weekly_background_energy",
    "ConsumerRow",
    "KillPolicyResult",
    "AppCadence",
    "EnergyReadout",
    "KeyedTotals",
    "TotalsReadout",
    "UserCadence",
    "UserTotalsView",
    "readout_from_checkpoint",
    "require_packet_detail",
    "totals_headline_stats",
    "StudyEnergy",
    "merge_keyed_totals",
    "TransitionStats",
    "UpdateFrequency",
    "background_energy_fraction",
    "batching_savings",
    "bytes_since_foreground",
    "category_energy",
    "case_study_table",
    "doze_savings",
    "estimate_update_frequency",
    "first_minute_fractions",
    "kill_policy_savings",
    "persistence_durations",
    "state_energy_fractions",
    "state_energy_share",
    "top10_appearance_counts",
    "top_consumers",
    "total_savings",
]
