"""Energy by Android process state (Fig 3 and the 84% headline).

The paper splits each app's network energy across the five process
states and finds that 84% of all cellular network energy is consumed in
a background state (perceptible, service or background), with service
alone at 32% and perceptible at 8%.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.core.readout import EnergyReadout
from repro.errors import AnalysisError
from repro.trace.events import ProcessState, background_state_values

#: Display order of the five paper states.
STATE_ORDER = (
    ProcessState.FOREGROUND,
    ProcessState.VISIBLE,
    ProcessState.PERCEPTIBLE,
    ProcessState.SERVICE,
    ProcessState.BACKGROUND,
)


def state_energy_fractions(
    study: EnergyReadout, apps: Optional[Iterable[str]] = None
) -> Dict[str, Dict[ProcessState, float]]:
    """Fig 3: per-app fraction of energy in each process state.

    Args:
        study: Precomputed study energy.
        apps: App names to include; defaults to the twelve highest
            energy consumers (the paper's selection of "data- or
            energy-hungry apps").

    Returns:
        app name -> {state: fraction}; fractions of each app sum to 1.
    """
    per_app_state = study.energy_by_app_state()
    if apps is None:
        totals = study.energy_by_app()
        top = sorted(totals, key=lambda a: totals[a], reverse=True)[:12]
        apps = [study.app_name(a) for a in top]
    out: Dict[str, Dict[ProcessState, float]] = {}
    for name in apps:
        app_id = study.app_id(name)
        by_state = {
            state: per_app_state.get((app_id, int(state)), 0.0)
            for state in STATE_ORDER
        }
        total = sum(by_state.values())
        if total <= 0:
            raise AnalysisError(f"app {name!r} has no attributed energy")
        out[name] = {state: e / total for state, e in by_state.items()}
    return out


def state_energy_share(study: EnergyReadout) -> Dict[ProcessState, float]:
    """Study-wide fraction of attributed energy per process state.

    Normalised over the paper's five states; the negligible residue of
    packets labelled ``NOT_RUNNING`` (bursts straddling a process-kill
    instant, as happens in real traces too) is excluded.
    """
    by_state = study.energy_by_state()
    five = {state: by_state.get(int(state), 0.0) for state in STATE_ORDER}
    total = sum(five.values())
    if total <= 0:
        raise AnalysisError("study has no attributed energy")
    return {state: joules / total for state, joules in five.items()}


def background_energy_fraction(
    study: EnergyReadout, app: Optional[str] = None
) -> float:
    """Fraction of attributed energy consumed in background states.

    Study-wide this is the paper's 84% headline; per app it gives e.g.
    Chrome's ~30%. Normalised over the five paper states (see
    :func:`state_energy_share` on the ``NOT_RUNNING`` residue).
    """
    per_app_state = study.energy_by_app_state()
    bg_values = set(background_state_values().tolist())
    five_values = {int(s) for s in STATE_ORDER}
    if app is not None:
        app_id = study.app_id(app)
        items = {
            (a, s): e
            for (a, s), e in per_app_state.items()
            if a == app_id and s in five_values
        }
    else:
        items = {
            (a, s): e for (a, s), e in per_app_state.items() if s in five_values
        }
    total = sum(items.values())
    if total <= 0:
        raise AnalysisError("no attributed energy in selection")
    background = sum(e for (_, s), e in items.items() if s in bg_values)
    return background / total


def background_fraction_per_app(study: EnergyReadout) -> Dict[str, float]:
    """Background energy fraction of every app with attributed energy."""
    per_app_state = study.energy_by_app_state()
    bg_values = set(background_state_values().tolist())
    five_values = {int(s) for s in STATE_ORDER}
    totals: Dict[int, float] = {}
    background: Dict[int, float] = {}
    for (app_id, state), joules in per_app_state.items():
        if state not in five_values:
            continue
        totals[app_id] = totals.get(app_id, 0.0) + joules
        if state in bg_values:
            background[app_id] = background.get(app_id, 0.0) + joules
    return {
        study.app_name(app_id): background.get(app_id, 0.0) / total
        for app_id, total in totals.items()
        if total > 0
    }
