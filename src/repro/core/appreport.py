"""Single-app deep dive — the "app management tool" view.

The paper's closing proposal is tooling that shows users and developers
what an app's network behaviour costs and why. This module assembles
everything the library knows about one app into a single structure:
energy and volume totals, battery impact, process-state split, update
cadence, flow shape, transition behaviour, hour-of-day profile, and the
§5/§6 intervention prices — rendered by ``repro app <name>``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.core.accounting import StudyEnergy
from repro.core.casestudies import case_study_row
from repro.core.periodicity import UpdateFrequency
from repro.core.recommend import Recommendation, recommend
from repro.core.statefrac import background_energy_fraction
from repro.core.transitions import TransitionStats, persistence_durations
from repro.core.readout import require_packet_detail
from repro.errors import AnalysisError
from repro.trace.events import ProcessState
from repro.units import DAY, MB, battery_fraction

HOUR_BINS = 24


@dataclass(frozen=True)
class AppReport:
    """Everything the study knows about one app."""

    app: str
    category: str
    users: int
    total_energy: float
    total_bytes: int
    joules_per_day: float
    battery_per_user_day: float
    background_fraction: float
    state_energy: Dict[ProcessState, float]
    update_frequency: UpdateFrequency
    joules_per_mb: float
    flows: int
    mb_per_flow: float
    transitions: TransitionStats
    hourly_energy: Tuple[float, ...]  # 24 bins, joules
    recommendation: Recommendation

    @property
    def overnight_fraction(self) -> float:
        """Share of the app's energy spent between midnight and 6 am —
        traffic almost no user is awake for (the Doze motivation)."""
        total = sum(self.hourly_energy)
        if total <= 0:
            return 0.0
        return sum(self.hourly_energy[0:6]) / total


def hourly_energy_profile(study: StudyEnergy, app: str) -> Tuple[float, ...]:
    """The app's attributed joules per hour of day, summed over users."""
    require_packet_detail(study, "hourly_energy_profile")
    app_id = study.dataset.registry.id_of(app)
    bins = np.zeros(HOUR_BINS)
    for trace in study.dataset:
        idx = study.index_for(trace.user_id).app_indices(app_id)
        if len(idx) == 0:
            continue
        result = study.user_result(trace.user_id)
        seconds_of_day = (trace.packets.timestamps[idx] - trace.start) % DAY
        hours = (seconds_of_day // 3600).astype(np.int64)
        bins += np.bincount(
            np.clip(hours, 0, HOUR_BINS - 1),
            weights=result.per_packet[idx],
            minlength=HOUR_BINS,
        )
    return tuple(float(v) for v in bins)


def app_report(study: StudyEnergy, app: str) -> AppReport:
    """Assemble the full single-app report."""
    require_packet_detail(study, "app_report")
    registry = study.dataset.registry
    info = registry.by_name(app)
    totals = study.energy_by_app()
    energy = totals.get(info.app_id, 0.0)
    if energy <= 0:
        raise AnalysisError(f"no energy attributed to {app!r}")
    volume = study.bytes_by_app().get(info.app_id, 0)
    case = case_study_row(study, app)
    users = study.users_with_app(info.app_id)
    user_days = sum(
        study.dataset.user(uid).duration_days for uid in users
    )
    per_app_state = study.energy_by_app_state()
    state_energy = {
        state: per_app_state.get((info.app_id, int(state)), 0.0)
        for state in ProcessState
        if state is not ProcessState.NOT_RUNNING
    }
    samples = persistence_durations(study.dataset, app=app)
    return AppReport(
        app=app,
        category=info.category,
        users=len(users),
        total_energy=energy,
        total_bytes=volume,
        joules_per_day=energy / user_days if user_days else 0.0,
        battery_per_user_day=(
            battery_fraction(energy) / user_days if user_days else 0.0
        ),
        background_fraction=background_energy_fraction(study, app),
        state_energy=state_energy,
        update_frequency=case.update_frequency,
        joules_per_mb=(energy / (volume / MB)) if volume else 0.0,
        flows=case.n_flows,
        mb_per_flow=case.mb_per_flow,
        transitions=TransitionStats.from_samples(app, samples),
        hourly_energy=hourly_energy_profile(study, app),
        recommendation=recommend(study, app),
    )


def render_app_report(report: AppReport) -> str:
    """Human-readable single-app dashboard."""
    from repro.core.report import format_duration, render_bars, render_table

    lines = [
        f"=== {report.app} ({report.category}) ===",
        "",
        render_table(
            ["metric", "value"],
            [
                ("users with traffic", report.users),
                ("total energy", f"{report.total_energy / 1e3:.1f} kJ"),
                ("total volume", f"{report.total_bytes / MB:.1f} MB"),
                ("energy per user-day", f"{report.joules_per_day:.0f} J"),
                (
                    "battery per user-day",
                    f"{report.battery_per_user_day * 100:.1f}%",
                ),
                ("energy per MB", f"{report.joules_per_mb:.1f} J/MB"),
                (
                    "background share",
                    f"{report.background_fraction * 100:.0f}%",
                ),
                ("update cadence", report.update_frequency.describe()),
                ("flows", report.flows),
                ("MB per flow", f"{report.mb_per_flow:.2f}"),
                (
                    "median persistence after minimise",
                    format_duration(report.transitions.median_persistence),
                ),
                (
                    "max persistence after minimise",
                    format_duration(report.transitions.max_persistence),
                ),
                (
                    "overnight (0-6 h) energy share",
                    f"{report.overnight_fraction * 100:.0f}%",
                ),
            ],
        ),
        "",
        render_bars(
            list(report.hourly_energy),
            [f"{h:02d}h" for h in range(24)],
            width=36,
            title="energy by hour of day",
        ),
        "",
        f"recommendation: {report.recommendation.describe()}",
    ]
    return "\n".join(lines)
