"""The one renderer registry behind the CLI, the store and the server.

Byte-identity between ``repro figure`` output, store-cached blobs and
HTTP bodies is not asserted after the fact — it is guaranteed by
construction: all three call the same :data:`ANALYSES` entry on the
same :class:`~repro.core.readout.EnergyReadout`. Every renderer here
is totals-tier (Figs 1–3, Table 1, the totals headlines, the readout
aggregates), so any readout — batch :class:`~repro.core.accounting.
StudyEnergy`, live stream result, or loaded checkpoint — renders the
identical text; per-packet artefacts (Figs 4–6, Table 2) are
deliberately absent and unservable.
"""

from __future__ import annotations

import json
from typing import Callable, Dict

from repro.core import report
from repro.core.casestudies import case_study_table
from repro.core.headlines import totals_headline_stats
from repro.core.popularity import top10_appearance_counts, top_consumers
from repro.core.readout import EnergyReadout
from repro.core.statefrac import state_energy_fractions
from repro.errors import AnalysisError
from repro.trace.events import ProcessState


def render_headline_rows(headlines) -> str:
    """Format :class:`~repro.core.headlines.Headline` rows, CLI-style."""
    return report.render_headlines(
        {
            f"{h.description} (paper: {h.paper_value:g})": round(h.measured, 3)
            for h in headlines
        }
    )


def readout_payload(readout: EnergyReadout) -> dict:
    """The study-wide aggregates of a readout as a JSON-able dict.

    What ``GET /readouts/{study}`` serves: per-app energy and traffic,
    per-state energy, the idle/attributed/total split and the user
    list — the numbers every totals-tier figure reduces from, exactly
    as the readout computes them (full float precision, no rounding).
    """
    provenance = getattr(readout, "provenance", None)
    return {
        "study": provenance.fingerprint if provenance else None,
        "model": provenance.model if provenance else None,
        "policy": provenance.policy if provenance else None,
        "users": list(readout.user_ids),
        "total_energy_j": readout.total_energy,
        "attributed_energy_j": readout.attributed_energy,
        "idle_energy_j": readout.idle_energy,
        "energy_by_app_j": {
            readout.app_name(app): joules
            for app, joules in readout.energy_by_app().items()
        },
        "bytes_by_app": {
            readout.app_name(app): n
            for app, n in readout.bytes_by_app().items()
        },
        "energy_by_state_j": {
            ProcessState(state).name.lower(): joules
            for state, joules in readout.energy_by_state().items()
        },
    }


def _render_fig1(readout: EnergyReadout) -> str:
    return report.render_fig1(top10_appearance_counts(readout))


def _render_fig2(readout: EnergyReadout) -> str:
    return report.render_fig2(
        top_consumers(readout, by="energy"), top_consumers(readout, by="data")
    )


def _render_fig3(readout: EnergyReadout) -> str:
    return report.render_fig3(state_energy_fractions(readout))


def _render_table1(readout: EnergyReadout) -> str:
    return report.render_table1(case_study_table(readout))


def _render_headlines(readout: EnergyReadout) -> str:
    return render_headline_rows(totals_headline_stats(readout))


def _render_readout(readout: EnergyReadout) -> str:
    return json.dumps(readout_payload(readout), indent=2)


#: Analysis name → totals-tier renderer. The keys are exactly
#: :data:`repro.store.keys.ANALYSIS_NAMES`.
ANALYSES: Dict[str, Callable[[EnergyReadout], str]] = {
    "fig1": _render_fig1,
    "fig2": _render_fig2,
    "fig3": _render_fig3,
    "table1": _render_table1,
    "headlines": _render_headlines,
    "readout": _render_readout,
}

#: Analysis name → blob kind (and thence HTTP media type).
ANALYSIS_KINDS: Dict[str, str] = {
    name: ("json" if name == "readout" else "text") for name in ANALYSES
}


def render_analysis(name: str, readout: EnergyReadout) -> str:
    """Render one servable artefact from any totals-tier readout."""
    try:
        renderer = ANALYSES[name]
    except KeyError:
        raise AnalysisError(
            f"unknown servable analysis {name!r}; the store renders "
            f"{', '.join(sorted(ANALYSES))}"
        ) from None
    return renderer(readout)
