"""The store index and the :class:`ResultStore` facade.

A single SQLite file (``<store>/index.sqlite``, stdlib :mod:`sqlite3`)
maps key digests to blob metadata: the key's four components verbatim
(so entries can be listed and invalidated by fingerprint or analysis
without re-deriving anything), the ETag, the blob kind, its content
checksum and size, and hit accounting. SQLite provides the cross-
process locking; every operation opens a short-lived connection, so
N serving threads and a concurrent CLI never share a handle.

:class:`ResultStore` is what everything above this layer talks to —
the CLI's ``--store`` flag, ``repro serve``, ``repro store ls|gc|
invalidate`` and the benchmarks. Its contract:

* :meth:`ResultStore.get` — O(lookup): one indexed SELECT plus one
  checksummed file read. Any defect (no row, missing blob, checksum
  mismatch on both generations) is a miss, never an error.
* :meth:`ResultStore.get_or_render` — **single-flight** compute on
  miss: concurrent clients racing on the same cold key elect one
  winner through an ``O_CREAT | O_EXCL`` lock file; the winner renders
  and publishes, the others poll the index and return the published
  entry without computing. A winner that dies leaves a lock whose age
  exceeds :data:`LOCK_TIMEOUT_S`; waiters then break the lock and take
  over, so a crash degrades to compute-twice (last write wins, both
  writes byte-identical), never to a deadlock.
* Invalidation is key-based: any change to the packets (fingerprint),
  model constants or policy changes the key, so stale entries are
  never *served* — they are orphaned, and :meth:`ResultStore.gc` /
  :meth:`ResultStore.invalidate` reclaim the space.

Metrics land in the shared :class:`~repro.metrics.RunMetrics`:
``store.hits`` / ``store.misses`` / ``store.puts`` / ``store.bytes``
counters, ``store.lookup`` / ``store.render`` stages, and
``store.single_flight_waits`` when a client parked behind a winner.
"""

from __future__ import annotations

import os
import sqlite3
import time
from contextlib import closing
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Tuple, Union

from repro.metrics import RunMetrics
from repro.store.blobs import BlobStore, content_checksum
from repro.store.keys import StoreKey

#: A compute lock older than this is considered abandoned (its owner
#: crashed); the next waiter removes it and computes itself.
LOCK_TIMEOUT_S = 30.0

#: How often a waiting client re-polls the index for the winner's entry.
POLL_INTERVAL_S = 0.02

_SCHEMA = """
CREATE TABLE IF NOT EXISTS entries (
    digest      TEXT PRIMARY KEY,
    fingerprint TEXT NOT NULL,
    model       TEXT NOT NULL,
    policy      TEXT NOT NULL,
    analysis    TEXT NOT NULL,
    etag        TEXT NOT NULL,
    kind        TEXT NOT NULL,
    checksum    TEXT NOT NULL,
    nbytes      INTEGER NOT NULL,
    created_at  REAL NOT NULL,
    hits        INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS entries_fingerprint ON entries (fingerprint);
"""


@dataclass(frozen=True)
class IndexEntry:
    """One index row, as listed by ``repro store ls``."""

    digest: str
    fingerprint: str
    model: str
    policy: str
    analysis: str
    etag: str
    kind: str
    checksum: str
    nbytes: int
    created_at: float
    hits: int


@dataclass
class StoredResult:
    """One served artefact: the verified bytes plus cache identity."""

    key: StoreKey
    etag: str
    kind: str
    data: bytes
    #: True when this call rendered the artefact (a cold miss); False
    #: when the bytes came straight from the store.
    fresh: bool = False

    @property
    def text(self) -> str:
        """The artefact decoded as UTF-8."""
        return self.data.decode("utf-8")


class StoreIndex:
    """The SQLite key → blob-metadata map (one short connection per op)."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        with closing(self._connect()) as conn, conn:
            conn.executescript(_SCHEMA)

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.path, timeout=10.0)
        conn.execute("PRAGMA busy_timeout = 10000")
        return conn

    def put(
        self, key: StoreKey, etag: str, kind: str, checksum: str, nbytes: int
    ) -> None:
        """Insert or replace the row for ``key``."""
        with closing(self._connect()) as conn, conn:
            conn.execute(
                "INSERT OR REPLACE INTO entries (digest, fingerprint, model,"
                " policy, analysis, etag, kind, checksum, nbytes, created_at,"
                " hits) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, 0)",
                (
                    key.digest(),
                    key.fingerprint,
                    key.model,
                    key.policy,
                    key.analysis,
                    etag,
                    kind,
                    checksum,
                    nbytes,
                    time.time(),
                ),
            )

    def lookup(self, digest: str) -> Optional[IndexEntry]:
        """The row named ``digest``, or ``None``."""
        with closing(self._connect()) as conn, conn:
            row = conn.execute(
                "SELECT digest, fingerprint, model, policy, analysis, etag,"
                " kind, checksum, nbytes, created_at, hits FROM entries"
                " WHERE digest = ?",
                (digest,),
            ).fetchone()
        return IndexEntry(*row) if row is not None else None

    def record_hit(self, digest: str) -> None:
        """Bump one row's hit counter (best effort, never raises)."""
        try:
            with closing(self._connect()) as conn, conn:
                conn.execute(
                    "UPDATE entries SET hits = hits + 1 WHERE digest = ?",
                    (digest,),
                )
        except sqlite3.Error:
            pass

    def entries(self) -> List[IndexEntry]:
        """Every row, newest first."""
        with closing(self._connect()) as conn, conn:
            rows = conn.execute(
                "SELECT digest, fingerprint, model, policy, analysis, etag,"
                " kind, checksum, nbytes, created_at, hits FROM entries"
                " ORDER BY created_at DESC"
            ).fetchall()
        return [IndexEntry(*row) for row in rows]

    def delete(self, digests: List[str]) -> int:
        """Remove the named rows; returns how many existed."""
        if not digests:
            return 0
        with closing(self._connect()) as conn, conn:
            cursor = conn.execute(
                "DELETE FROM entries WHERE digest IN ("
                + ",".join("?" * len(digests))
                + ")",
                digests,
            )
            return cursor.rowcount


class ResultStore:
    """The persistent results store: SQLite index + checksummed blobs."""

    def __init__(
        self,
        directory: Union[str, Path],
        metrics: Optional[RunMetrics] = None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.index = StoreIndex(self.directory / "index.sqlite")
        self.blobs = BlobStore(self.directory)
        self._locks = self.directory / "locks"
        self._locks.mkdir(exist_ok=True)
        self.metrics = metrics if metrics is not None else RunMetrics()

    # ------------------------------------------------------------------
    # Lookup / publish
    # ------------------------------------------------------------------
    def get(self, key: StoreKey) -> Optional[StoredResult]:
        """The stored artefact for ``key``, or ``None`` on any miss."""
        with self.metrics.stage("store.lookup"):
            digest = key.digest()
            entry = self.index.lookup(digest)
            data = (
                self.blobs.read(digest, entry.kind, entry.checksum)
                if entry is not None
                else None
            )
        if data is None:
            self.metrics.count("store.misses")
            return None
        self.metrics.count("store.hits")
        self.metrics.count("store.bytes", len(data))
        self.index.record_hit(digest)
        return StoredResult(key=key, etag=entry.etag, kind=entry.kind, data=data)

    def put(self, key: StoreKey, data: bytes, kind: str = "text") -> StoredResult:
        """Publish ``data`` under ``key`` (blob first, then index row)."""
        digest = key.digest()
        checksum = self.blobs.write(digest, kind, data)
        etag = key.etag()
        self.index.put(key, etag, kind, checksum, len(data))
        self.metrics.count("store.puts")
        return StoredResult(key=key, etag=etag, kind=kind, data=data, fresh=True)

    def get_or_render(
        self,
        key: StoreKey,
        render: Callable[[], bytes],
        kind: str = "text",
    ) -> StoredResult:
        """Serve ``key`` from the store, computing it at most once.

        On a cold key, concurrent callers elect a single winner via an
        exclusive lock file; the winner runs ``render`` (timed under
        the ``store.render`` stage) and publishes, the rest wait on the
        index and serve the winner's bytes. See the module docstring
        for the crash-degraded (last-write-wins) path.
        """
        found = self.get(key)
        if found is not None:
            return found
        digest = key.digest()
        lock = self._locks / f"{digest}.lock"
        while True:
            try:
                fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                published = self._wait_for(key, lock)
                if published is not None:
                    return published
                continue  # lock broken with nothing published: take over
            os.close(fd)
            try:
                with self.metrics.stage("store.render"):
                    data = render()
                return self.put(key, data, kind)
            finally:
                try:
                    lock.unlink()
                except OSError:
                    pass

    def _wait_for(
        self, key: StoreKey, lock: Path
    ) -> Optional[StoredResult]:
        """Park behind the lock owner until they publish or vanish."""
        self.metrics.count("store.single_flight_waits")
        while True:
            try:
                age = time.time() - lock.stat().st_mtime
            except OSError:
                # Lock released: either the entry is there now, or the
                # winner failed and the caller should try to take over.
                return self.get(key)
            if age > LOCK_TIMEOUT_S:
                # Abandoned lock (owner crashed mid-render): break it.
                try:
                    lock.unlink()
                except OSError:
                    pass
                return self.get(key)
            time.sleep(POLL_INTERVAL_S)
            found = self.get(key)
            if found is not None:
                return found

    # ------------------------------------------------------------------
    # Maintenance (repro store ls | gc | invalidate)
    # ------------------------------------------------------------------
    def entries(self) -> List[IndexEntry]:
        """Every index row, newest first."""
        return self.index.entries()

    def invalidate(
        self,
        fingerprint: Optional[str] = None,
        analysis: Optional[str] = None,
        everything: bool = False,
    ) -> Tuple[int, int]:
        """Drop entries by fingerprint prefix and/or analysis name.

        Returns ``(entries_removed, blob_files_removed)``. With
        ``everything=True`` the whole store is emptied. A fingerprint
        may be abbreviated to any prefix (as printed by ``store ls``).
        """
        if not everything and fingerprint is None and analysis is None:
            raise ValueError(
                "invalidate needs a fingerprint, an analysis, or everything=True"
            )
        doomed = [
            entry
            for entry in self.index.entries()
            if everything
            or (
                (fingerprint is None or entry.fingerprint.startswith(fingerprint))
                and (analysis is None or entry.analysis == analysis)
            )
        ]
        files = sum(self.blobs.delete(e.digest, e.kind) for e in doomed)
        removed = self.index.delete([e.digest for e in doomed])
        self.metrics.count("store.invalidated", removed)
        return removed, files

    def gc(self) -> Tuple[int, int]:
        """Reclaim inconsistent state; returns ``(rows, files)`` removed.

        Drops index rows whose blob is missing or fails its checksum on
        both generations; blob files no index row references (including
        their ``.prev``/``.tmp`` companions); a live entry's ``.prev``
        rotation whose bytes no longer match the row's checksum (reads
        verify against the row, so such a rotation can never be
        served); ``.tmp`` spills and compute locks older than
        :data:`LOCK_TIMEOUT_S`. Young ``.tmp`` files survive either
        way — they may be an in-flight publish whose index row simply
        has not landed yet.
        """
        rows = self.index.entries()
        dead_rows = [
            e.digest
            for e in rows
            if self.blobs.read(e.digest, e.kind, e.checksum) is None
        ]
        removed_rows = self.index.delete(dead_rows)
        dead = set(dead_rows)
        live = {e.digest: e for e in rows if e.digest not in dead}
        removed_files = 0
        now = time.time()
        for blob in sorted(self.blobs.directory.iterdir()):
            name = blob.name
            entry = live.get(name.split(".", 1)[0])
            try:
                if name.endswith(".tmp"):
                    if now - blob.stat().st_mtime > LOCK_TIMEOUT_S:
                        blob.unlink()
                        removed_files += 1
                elif entry is None:
                    blob.unlink()
                    removed_files += 1
                elif name.endswith(".prev"):
                    if content_checksum(blob.read_bytes()) != entry.checksum:
                        blob.unlink()
                        removed_files += 1
            except OSError:
                pass
        for lock in sorted(self._locks.glob("*.lock")):
            try:
                if now - lock.stat().st_mtime > LOCK_TIMEOUT_S:
                    lock.unlink()
                    removed_files += 1
            except OSError:
                pass
        return removed_rows, removed_files
