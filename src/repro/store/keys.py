"""Store keys: what identifies one cached artefact, and its ETag.

The results store caches *rendered artefacts* — figure/table text,
headline blocks, readout JSON — each fully determined by four inputs:

* the **source fingerprint** (``Dataset.fingerprint()`` for a batch
  study; the checkpoint's source signature for an ingest readout),
* the **radio model** (the frozen dataclass ``repr`` — any constant
  change changes the key),
* the **tail policy** value,
* the **analysis name** (one of :data:`ANALYSIS_NAMES`).

:class:`StoreKey` carries the four verbatim; :meth:`StoreKey.digest`
folds them (plus :data:`KEY_FORMAT`) into one hex digest that names
the index row, the blob file and — quoted — the HTTP ``ETag``. Because
the ETag *is* the key, a conditional request never needs the blob: if
the client's ``If-None-Match`` equals the key's ETag, the artefact
cannot have changed (a changed input would have changed the key), and
the server answers ``304`` from the digest alone.

A batch study and an ingest checkpoint over the same packets key
separately (a dataset content digest vs. a source signature), so both
pipelines cache side by side; their rendered bytes are identical
either way (asserted in ``benchmarks/bench_serve.py``).

Sharding is invisible here by construction: a checkpoint merged by
``repro shard merge`` carries the **parent** source signature (per-shard
signatures exist only inside shard checkpoints, which refuse to become
readouts), so its provenance triple — and therefore its key and ETag —
is identical to an unsharded ``repro ingest`` over the same source. A
store or ``repro serve`` instance warmed by either pipeline answers for
both.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import AnalysisError

#: The artefacts the store knows how to cache and serve: the
#: totals-tier figures and table, the totals-tier headline block, and
#: the study-wide readout aggregates as JSON.
ANALYSIS_NAMES = ("fig1", "fig2", "fig3", "table1", "headlines", "readout")

#: Bumped whenever a renderer's output format changes, so stale blobs
#: from an older code version can never be served byte-for-byte wrong.
KEY_FORMAT = 1


@dataclass(frozen=True)
class StoreKey:
    """One cached artefact's identity: (fingerprint, model, policy, analysis)."""

    fingerprint: str
    model: str
    policy: str
    analysis: str

    def digest(self) -> str:
        """Hex digest naming the index row, blob file and ETag."""
        digest = hashlib.blake2b(digest_size=16)
        for part in (
            str(KEY_FORMAT),
            self.fingerprint,
            self.model,
            self.policy,
            self.analysis,
        ):
            digest.update(part.encode("utf-8"))
            digest.update(b"\x00")
        return digest.hexdigest()

    def etag(self) -> str:
        """The strong HTTP entity tag: the quoted key digest."""
        return f'"{self.digest()}"'


def store_key_for(source, analysis: str) -> StoreKey:
    """The :class:`StoreKey` of ``analysis`` over ``source``.

    ``source`` is anything carrying a
    :class:`~repro.core.readout.ReadoutProvenance` — a
    :class:`~repro.core.accounting.StudyEnergy` or a checkpoint-loaded
    :class:`~repro.core.readout.TotalsReadout`. Sources without
    provenance (a bare in-memory readout assembled by hand) cannot be
    keyed and raise :class:`~repro.errors.AnalysisError`.
    """
    if analysis not in ANALYSIS_NAMES:
        raise AnalysisError(
            f"unknown store analysis {analysis!r}; the store serves "
            f"{', '.join(ANALYSIS_NAMES)}"
        )
    provenance = getattr(source, "provenance", None)
    if provenance is None:
        raise AnalysisError(
            f"{type(source).__name__} carries no provenance (fingerprint/"
            "model/policy), so its results cannot be keyed in the store"
        )
    return StoreKey(
        fingerprint=provenance.fingerprint,
        model=provenance.model,
        policy=provenance.policy,
        analysis=analysis,
    )
