"""Blob files: the stored bytes of each rendered artefact.

One file per store key under ``<store>/blobs/``, named by the key
digest with an extension per artefact kind (``.txt`` for rendered
figures/tables/headlines, ``.json`` for readout aggregates). The index
(:mod:`repro.store.index`) maps keys to blobs and carries each blob's
content checksum; this module only moves verified bytes.

Writes follow the checkpoint durability pattern
(:func:`repro.core.cache.publish_file` with ``keep_prev=True``): the
new blob is written to a temp file, the previous good generation is
rotated to ``<name>.prev``, and one rename publishes. Reads verify the
expected checksum and fall back to the ``.prev`` generation when the
current file is torn; a blob that fails both ways is a **miss, never
an error** — the caller recomputes and overwrites, exactly like a
corrupt attribution-cache entry.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Optional, Union

from repro.core.cache import publish_file

#: Artefact kinds and their blob extensions / media types.
BLOB_KINDS = {
    "text": ("txt", "text/plain; charset=utf-8"),
    "json": ("json", "application/json"),
}


def content_checksum(data: bytes) -> str:
    """Digest stored in the index row and verified on every read."""
    return hashlib.blake2b(data, digest_size=16).hexdigest()


def checksum_file(path: Union[str, Path], chunk_size: int = 1 << 20) -> str:
    """:func:`content_checksum` of a file, streamed in bounded chunks.

    Used wherever whole files cross a trust boundary — a shard
    checkpoint served by ``repro shard worker`` advertises this digest
    as its strong ETag, and the coordinator recomputes it over the
    downloaded bytes before letting the file near a merge — without
    ever holding a multi-GB checkpoint in memory just to hash it.
    """
    digest = hashlib.blake2b(digest_size=16)
    with open(path, "rb") as handle:
        while True:
            piece = handle.read(chunk_size)
            if not piece:
                break
            digest.update(piece)
    return digest.hexdigest()


def media_type(kind: str) -> str:
    """The HTTP ``Content-Type`` for one artefact kind."""
    return BLOB_KINDS[kind][1]


class BlobStore:
    """Checksummed blob files under ``<directory>/blobs/``."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory) / "blobs"
        self.directory.mkdir(parents=True, exist_ok=True)

    def path_for(self, digest: str, kind: str) -> Path:
        """The blob file for one key digest and artefact kind."""
        if kind not in BLOB_KINDS:
            raise ValueError(
                f"unknown blob kind {kind!r}; expected one of "
                f"{sorted(BLOB_KINDS)}"
            )
        return self.directory / f"{digest}.{BLOB_KINDS[kind][0]}"

    def write(self, digest: str, kind: str, data: bytes) -> str:
        """Persist ``data``; returns its content checksum.

        Atomic (tmp + rename) with the previous good generation
        rotated to ``.prev``, so a concurrent reader always sees a
        complete file and a torn final rename still leaves one
        recoverable generation behind.
        """
        path = self.path_for(digest, kind)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_bytes(data)
        publish_file(tmp, path, keep_prev=True)
        return content_checksum(data)

    def read(
        self, digest: str, kind: str, checksum: str
    ) -> Optional[bytes]:
        """The verified bytes for one entry, or ``None`` on any defect.

        Tries the current file, then the ``.prev`` rotation; a missing
        file or a checksum mismatch on both is a miss (the index entry
        is stale or the write tore), never an error.
        """
        path = self.path_for(digest, kind)
        for candidate in (path, path.with_name(path.name + ".prev")):
            try:
                data = candidate.read_bytes()
            except OSError:
                continue
            if content_checksum(data) == checksum:
                return data
        return None

    def delete(self, digest: str, kind: str) -> int:
        """Remove a blob and its rotations; returns files deleted."""
        path = self.path_for(digest, kind)
        removed = 0
        for candidate in (
            path,
            path.with_name(path.name + ".prev"),
            path.with_name(path.name + ".tmp"),
        ):
            try:
                candidate.unlink()
                removed += 1
            except OSError:
                pass
        return removed
