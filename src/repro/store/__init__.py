"""Persistent results store + the ``repro serve`` HTTP query API.

The store caches *rendered* artefacts — figure/table text, headline
blocks, readout-aggregate JSON — keyed by everything they depend on:
``(dataset fingerprint, radio model, tail policy, analysis)``
(:class:`~repro.store.keys.StoreKey`). A SQLite index maps keys to
checksummed blob files written with the checkpoint ``.prev`` rotation,
so concurrent readers never see a torn artefact and a crashed write
costs at most one recompute (:class:`~repro.store.index.ResultStore`).

On top of the store, :mod:`repro.store.server` serves the totals-tier
endpoints over stdlib ``http.server`` with strong ETags equal to the
store-key digest: conditional requests answer 304 without touching the
store at all. The CLI (``repro figure --store``, ``repro serve``,
``repro store ls|gc|invalidate``) is a thin client of the same
:data:`~repro.store.render.ANALYSES` registry, which is what makes
store-served, checkpoint-rendered and direct-batch output
byte-identical. The full contract is documented in docs/SERVING.md.
"""

from repro.store.blobs import BlobStore, content_checksum, media_type
from repro.store.index import (
    IndexEntry,
    ResultStore,
    StoredResult,
    StoreIndex,
)
from repro.store.keys import ANALYSIS_NAMES, StoreKey, store_key_for
from repro.store.render import (
    ANALYSES,
    ANALYSIS_KINDS,
    readout_payload,
    render_analysis,
    render_headline_rows,
)
from repro.store.server import (
    LIVE_MANIFEST_NAME,
    ROUTES,
    StudyServer,
    etag_matches,
    make_server,
)

__all__ = [
    "ANALYSES",
    "ANALYSIS_KINDS",
    "ANALYSIS_NAMES",
    "BlobStore",
    "IndexEntry",
    "LIVE_MANIFEST_NAME",
    "ResultStore",
    "ROUTES",
    "StoreIndex",
    "StoreKey",
    "StoredResult",
    "StudyServer",
    "content_checksum",
    "etag_matches",
    "make_server",
    "media_type",
    "readout_payload",
    "render_analysis",
    "render_headline_rows",
    "store_key_for",
]
