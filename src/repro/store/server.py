"""``repro serve``: the stdlib HTTP query API over one study's store.

A dependency-free :mod:`http.server` (``ThreadingHTTPServer``, one
thread per connection) serving the totals-tier artefacts of a single
readout — typically a finished ``repro ingest`` checkpoint, so figures
for a multi-month study are answered without a packet in memory.

Routes (:data:`ROUTES`; the serving contract lives in
docs/SERVING.md):

=============================  ========================================
``GET /``                      JSON index: study id, model/policy,
                               endpoints, published live windows
``GET /figures/{fig}``         rendered Fig 1/2/3 text (``fig1|fig2|fig3``)
``GET /tables/table1``         rendered Table 1 text
``GET /headlines``             the totals-tier headline block
``GET /readouts/{study}``      study-wide aggregates as JSON (the study
                               id from ``GET /``; any other id is a 404)
``GET /live/``                 the live-window manifest a ``repro
                               follow`` publisher maintains in this store
``GET /live/{window}/{analysis}``  one live window's artefact
=============================  ========================================

Every artefact response carries a **strong ETag** — the quoted store-
key digest (:meth:`repro.store.keys.StoreKey.etag`). Because the key
digests everything the artefact depends on, a matching
``If-None-Match`` (compared by :func:`etag_matches`) answers ``304 Not
Modified`` from string comparison alone: no store lookup, no blob
read, no render. Cold keys render once (single-flight, see
:class:`repro.store.index.ResultStore`) and every later request is one
index SELECT plus one verified file read. A live window's fingerprint
embeds its fold digest, so its ETag moves exactly when some window
total moves — pollers revalidate for free between seals.

Status codes are deliberately few: ``200`` (artefact served), ``304``
(conditional hit), ``404`` — unknown route, unknown study id, an
artefact this readout cannot produce (a per-packet figure, or Table 1
cadence after ``repro ingest --no-cadence``; the body names the
reason), or a live window not (yet) published, ``405`` for non-GET
methods.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import urlsplit

from repro.errors import AnalysisError, NeedsPacketDetail
from repro.metrics import RunMetrics
from repro.store.blobs import media_type
from repro.store.index import ResultStore
from repro.store.keys import StoreKey, store_key_for
from repro.store.render import ANALYSIS_KINDS, render_analysis

#: The served route templates; docs/SERVING.md's endpoint table is
#: checked against this tuple by tests/test_docs_consistency.py.
ROUTES = (
    "/",
    "/figures/{fig}",
    "/tables/table1",
    "/headlines",
    "/readouts/{study}",
    "/live/",
    "/live/{window}/{analysis}",
)

#: The figure names under ``/figures/``.
SERVABLE_FIGURES = ("fig1", "fig2", "fig3")

#: The live-window manifest filename inside a store directory — the
#: file :class:`repro.follow.Follower` rewrites atomically on every
#: publish. (The string is repeated here rather than imported: the
#: store must not depend on the follow subsystem, which builds on it.)
LIVE_MANIFEST_NAME = "live.json"


def etag_matches(header: Optional[str], etag: str) -> bool:
    """Does an ``If-None-Match`` header match one strong ETag?

    Implements the RFC 7232 comparison the conditional-GET paths rely
    on: the header is a comma-separated list of entity tags; ``*``
    matches anything; a ``W/`` weak-validator prefix is ignored
    (``If-None-Match`` uses weak comparison, and our tags are content
    digests either way). Anything else must equal the quoted digest
    *exactly* — a tag for a different artefact never revalidates.
    """
    if header is None:
        return False
    for candidate in header.split(","):
        candidate = candidate.strip()
        if candidate == "*":
            return True
        if candidate.startswith("W/"):
            candidate = candidate[2:].strip()
        if candidate == etag:
            return True
    return False


class StudyServer(ThreadingHTTPServer):
    """One study's query API: a readout + its results store."""

    # Non-daemon handler threads (unlike ThreadingHTTPServer's default)
    # so ``server_close()`` joins in-flight responses: a bounded run
    # (``repro serve --max-requests N``) must finish writing its last
    # response before the process exits. Requests are short-lived
    # (Connection: close), so the join is bounded too.
    daemon_threads = False

    def __init__(
        self,
        address: Tuple[str, int],
        readout,
        store: ResultStore,
        metrics: Optional[RunMetrics] = None,
        quiet: bool = False,
    ) -> None:
        if readout is None:
            # Live-only mode (``repro serve --live``): no study readout,
            # just the /live/ routes over whatever a follower publishes.
            self.study_id = None
        else:
            provenance = getattr(readout, "provenance", None)
            if provenance is None:
                raise AnalysisError(
                    "cannot serve a readout without provenance (fingerprint/"
                    "model/policy) — load it from a checkpoint or a "
                    "StudyEnergy"
                )
            #: The study id clients address ``/readouts/{study}`` with.
            self.study_id = provenance.fingerprint
        self.readout = readout
        self.store = store
        self.metrics = metrics if metrics is not None else store.metrics
        self.quiet = quiet
        super().__init__(address, _Handler)

    def key_for(self, analysis: str) -> StoreKey:
        """The store key of one servable analysis over this study."""
        return store_key_for(self.readout, analysis)

    def live_manifest(self) -> Optional[dict]:
        """The store's live-window manifest, or ``None`` when absent.

        Re-read on every request: the follower replaces the file
        atomically, so a read sees either the old or the new complete
        manifest, never a torn one.
        """
        path = self.store.directory / LIVE_MANIFEST_NAME
        try:
            return json.loads(path.read_text())
        except (OSError, ValueError):
            return None

    def index_payload(self) -> dict:
        """What ``GET /`` returns: discovery for curl-level clients."""
        manifest = self.live_manifest()
        live = sorted(manifest.get("windows", {})) if manifest else []
        if self.readout is None:
            return {
                "study": None,
                "model": manifest["model"] if manifest else None,
                "policy": manifest["policy"] if manifest else None,
                "users": 0,
                "endpoints": ["/live/"]
                + [f"/live/{name}/{{analysis}}" for name in live],
                "live": live,
            }
        provenance = self.readout.provenance
        return {
            "study": self.study_id,
            "model": provenance.model,
            "policy": provenance.policy,
            "users": len(self.readout.user_ids),
            "endpoints": [
                "/figures/fig1",
                "/figures/fig2",
                "/figures/fig3",
                "/tables/table1",
                "/headlines",
                f"/readouts/{self.study_id}",
            ],
            "live": live,
        }


class HttpResponder:
    """Response-sending helpers shared by repro's stdlib HTTP servers.

    Mixed into request handlers (here and in :mod:`repro.shard.worker`)
    ahead of :class:`~http.server.BaseHTTPRequestHandler`: every
    response carries an explicit ``Content-Length`` and ``Connection:
    close``, and artefact responses may carry a strong ETag with
    ``must-revalidate`` caching. 404s count under
    :attr:`not_found_counter` on ``self.server.metrics``.
    """

    #: Metrics counter charged by :meth:`_send_not_found`; the shard
    #: worker overrides this with its ``transport.*`` name.
    not_found_counter = "serve.not_found"

    def _send(self, status: int, body: bytes, content_type: str, etag=None):
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if etag is not None:
            self.send_header("ETag", etag)
            self.send_header("Cache-Control", "max-age=0, must-revalidate")
        self.send_header("Connection", "close")
        self.close_connection = True
        self.end_headers()
        self.wfile.write(body)

    def _send_not_modified(self, etag: str) -> None:
        self.send_response(304)
        self.send_header("ETag", etag)
        self.send_header("Connection", "close")
        self.close_connection = True
        self.end_headers()

    def _send_not_found(self, reason: str) -> None:
        self.server.metrics.count(self.not_found_counter)
        self._send(
            404, (reason + "\n").encode("utf-8"), "text/plain; charset=utf-8"
        )


class _Handler(HttpResponder, BaseHTTPRequestHandler):
    server_version = "repro-serve"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _resolve(self, path: str) -> Tuple[Optional[str], str]:
        """Map a URL path to ``(analysis, reason-if-none)``."""
        parts = [p for p in path.split("/") if p]
        if len(parts) == 2 and parts[0] == "figures":
            if parts[1] in SERVABLE_FIGURES:
                return parts[1], ""
            if parts[1] in ("fig4", "fig5", "fig6", "4", "5", "6"):
                return None, (
                    f"figure {parts[1]} replays per-packet arrays; it is "
                    "not servable from the totals tier — run the batch "
                    "CLI (`repro figure N --dataset ...`) instead"
                )
            return None, f"unknown figure {parts[1]!r} (fig1|fig2|fig3)"
        if len(parts) == 2 and parts[0] == "tables":
            if parts[1] == "table1":
                return "table1", ""
            return None, (
                f"unknown table {parts[1]!r}; only table1 is totals-tier "
                "(Table 2 replays packets — use the batch CLI)"
            )
        if parts == ["headlines"]:
            return "headlines", ""
        if len(parts) == 2 and parts[0] == "readouts":
            if parts[1] == self.server.study_id:
                return "readout", ""
            return None, (
                f"unknown study {parts[1]!r}; this server holds study "
                f"{self.server.study_id}"
            )
        return None, f"no route for {path!r} (see GET / for the endpoint list)"

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        metrics = self.server.metrics
        metrics.count("serve.requests")
        with metrics.stage("serve.request"):
            path = urlsplit(self.path).path
            if path == "/":
                body = (
                    json.dumps(self.server.index_payload(), indent=2) + "\n"
                ).encode("utf-8")
                self._send(200, body, "application/json")
                return
            if path == "/live" or path.startswith("/live/"):
                self._serve_live(path)
                return
            analysis, reason = self._resolve(path)
            if analysis is None:
                self._send_not_found(reason)
                return
            if self.server.readout is None:
                self._send_not_found(
                    "no study loaded (live-only server; see GET /live/)"
                )
                return
            key = self.server.key_for(analysis)
            etag = key.etag()
            if etag_matches(self.headers.get("If-None-Match"), etag):
                # The ETag *is* the key digest: equality alone proves
                # the client's copy is current — no store round trip.
                metrics.count("serve.not_modified")
                self._send_not_modified(etag)
                return
            kind = ANALYSIS_KINDS[analysis]
            try:
                result = self.server.store.get_or_render(
                    key,
                    lambda: render_analysis(
                        analysis, self.server.readout
                    ).encode("utf-8"),
                    kind=kind,
                )
            except NeedsPacketDetail as exc:
                self._send_not_found(str(exc))
                return
            self._send(200, result.data, media_type(kind), etag=etag)

    def _serve_live(self, path: str) -> None:
        """The ``/live/`` routes: manifest-driven, publisher-rendered.

        Nothing renders here — the follower already rendered and
        ``put`` every artefact; this side only resolves the manifest to
        a store key and serves the blob. A manifest entry whose blob is
        gone (mid-invalidate race) is a plain 404; the next poll sees
        the new generation.
        """
        metrics = self.server.metrics
        manifest = self.server.live_manifest()
        if manifest is None:
            self._send_not_found(
                "no live windows (no follower has published to this store)"
            )
            return
        parts = [p for p in path.split("/") if p]
        if parts == ["live"]:
            body = (json.dumps(manifest, indent=2) + "\n").encode("utf-8")
            self._send(200, body, "application/json")
            return
        if len(parts) != 3:
            self._send_not_found(
                f"no route for {path!r} (GET /live/ lists live windows)"
            )
            return
        _, window, analysis = parts
        entry = manifest.get("windows", {}).get(window)
        if entry is None:
            known = ", ".join(sorted(manifest.get("windows", {}))) or "none"
            self._send_not_found(
                f"unknown live window {window!r} (published: {known})"
            )
            return
        analyses = manifest.get("analyses", [])
        if analysis not in analyses:
            self._send_not_found(
                f"analysis {analysis!r} is not published live "
                f"({', '.join(analyses)})"
            )
            return
        key = StoreKey(
            entry["fingerprint"],
            manifest["model"],
            manifest["policy"],
            analysis,
        )
        etag = key.etag()
        if etag_matches(self.headers.get("If-None-Match"), etag):
            metrics.count("serve.not_modified")
            self._send_not_modified(etag)
            return
        result = self.server.store.get(key)
        if result is None:
            self._send_not_found(
                f"live window {window!r} has no stored {analysis!r} "
                "(superseded mid-request; refetch GET /live/)"
            )
            return
        self._send(200, result.data, media_type(result.kind), etag=etag)

    def do_HEAD(self) -> None:  # noqa: N802
        self.send_response(405)
        self.send_header("Allow", "GET")
        self.send_header("Content-Length", "0")
        self.end_headers()

    do_POST = do_PUT = do_DELETE = do_HEAD

    def log_message(self, format: str, *args) -> None:
        if not getattr(self.server, "quiet", False):
            super().log_message(format, *args)


def make_server(
    readout,
    store: ResultStore,
    host: str = "127.0.0.1",
    port: int = 0,
    metrics: Optional[RunMetrics] = None,
    quiet: bool = False,
) -> StudyServer:
    """Bind a :class:`StudyServer` (``port=0`` picks a free port).

    The caller drives it: ``serve_forever()`` until interrupted, or
    ``handle_request()`` N times for bounded runs; ``server_address``
    reveals the bound port either way. ``readout=None`` binds a
    live-only server (``repro serve --live``): just the ``/live/``
    routes over whatever a follower publishes into ``store``.
    """
    return StudyServer((host, port), readout, store, metrics, quiet=quiet)
