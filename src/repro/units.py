"""Unit constants and small conversion helpers.

Internally the library uses SI base units throughout:

* time        -- seconds (``float``)
* energy      -- joules
* power       -- watts
* data volume -- bytes
* throughput  -- bytes per second

The helpers below exist so that analysis and reporting code can convert to
the units the paper reports (J/day, J/flow, MB/flow, J/MB) without magic
numbers scattered around.
"""

from __future__ import annotations

#: Seconds in one minute / hour / day.
MINUTE = 60.0
HOUR = 3600.0
DAY = 86400.0

#: Bytes in one kilobyte / megabyte / gigabyte (SI, as used by the paper).
KB = 1e3
MB = 1e6
GB = 1e9

#: Milliwatts to watts, milliseconds to seconds.
MILLI = 1e-3


def mw(milliwatts: float) -> float:
    """Convert milliwatts to watts."""
    return milliwatts * MILLI


def ms(milliseconds: float) -> float:
    """Convert milliseconds to seconds."""
    return milliseconds * MILLI


def joules_per_megabyte(joules: float, volume_bytes: float) -> float:
    """Energy efficiency in J/MB, the paper's "Avg. J/B" column.

    Returns ``0.0`` when no bytes were transferred, mirroring how the
    paper leaves such cells empty rather than undefined.
    """
    if volume_bytes <= 0:
        return 0.0
    return joules / (volume_bytes / MB)


def bytes_to_mb(volume_bytes: float) -> float:
    """Convert bytes to megabytes (SI)."""
    return volume_bytes / MB


def days(seconds: float) -> float:
    """Convert seconds to (fractional) days."""
    return seconds / DAY


def per_day(total: float, duration_seconds: float) -> float:
    """Normalise ``total`` to a per-day rate over ``duration_seconds``."""
    if duration_seconds <= 0:
        return 0.0
    return total / (duration_seconds / DAY)


#: Usable energy of the study device's battery (Samsung Galaxy S III:
#: 2100 mAh at 3.8 V nominal), joules.
GALAXY_S3_BATTERY_J = 2.1 * 3.8 * 3600.0


def battery_fraction(joules: float, battery_joules: float = GALAXY_S3_BATTERY_J) -> float:
    """Fraction of a full battery that ``joules`` represents.

    Puts radio energy in the units users feel: Weibo's ~2.5 kJ/day of
    background radio energy is ~9% of a Galaxy S III charge every day.
    """
    if battery_joules <= 0:
        return 0.0
    return joules / battery_joules
