"""Deterministic, seedable fault injection (the chaos layer).

A 22-month ingestion job fails mid-run as the common case, not the
exception: workers crash, tasks hang, input rows arrive malformed,
checkpoint writes get torn by a power cut. Nothing in the library can
be *proven* robust against those unless the failures themselves are
reproducible — so this module makes them first-class, deterministic
inputs.

Library code declares **fault sites**: named points where a fault could
strike (:data:`SITES`). Each call to :func:`fire` at a site increments
a per-process, per-site counter and consults the armed
:class:`FaultPlan`; with no plan armed it is a no-op costing one
attribute load. A matching :class:`FaultSpec` then either acts directly
(``crash`` exits the process, ``hang`` sleeps, ``raise`` throws
:class:`~repro.errors.FaultInjected`) or is returned to the site, which
applies the data-mangling actions (``corrupt`` a CSV row or a shard
checkpoint in flight, ``truncate`` an archive stream, ``torn``-write a
checkpoint file, ``drop`` a coordinator dispatch on the floor).

Activation crosses process boundaries through an env hook:
:func:`install` arms the plan in-process **and** exports it as JSON in
``os.environ[ENV_VAR]``. ``fork`` pool workers inherit the armed module
state copy-on-write; ``spawn`` workers import this module fresh and
pick the plan up from the environment on their first :func:`fire`. The
hardened :class:`~repro.parallel.TaskPool` is therefore testable under
both start methods with the same plan.

Plans are seeded and serialisable (:meth:`FaultPlan.random`,
:meth:`FaultPlan.to_json`), so a chaos run is reproducible from one
integer — the contract ``tests/test_chaos.py`` is built on.
"""

from __future__ import annotations

import json
import os
import random
import time
from dataclasses import asdict, dataclass
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Union

from repro.errors import FaultInjected

#: Environment variable carrying the armed plan as JSON — the hook that
#: lets injected faults reach ``fork``/``spawn`` pool workers.
ENV_VAR = "REPRO_FAULT_PLAN"

#: Fault sites compiled into the library. ``fire(site)`` is a no-op at
#: every one of them until a plan is armed.
SITES = (
    "parallel.worker",  # pool worker, just before the task runs
    "attribute.task",  # per-user batch attribution task
    "io.packet_row",  # streamed CSV packet row (action: corrupt)
    "npz.member",  # streamed .npz packet member (action: truncate)
    "checkpoint.save",  # checkpoint write (action: torn)
    "shard.manifest",  # shard manifest write (action: torn)
    "follow.tail",  # live-follow tail poll, before any read
    "follow.evict",  # live-follow ring eviction, before buckets drop
    "transport.dispatch",  # coordinator, before a shard POST (action: drop)
    "transport.collect",  # coordinator, downloaded bytes (action: corrupt)
    "transport.worker",  # HTTP shard worker, before the shard runs
)

#: Which actions make sense at which sites. ``crash``/``hang``/``raise``
#: are applied by :func:`fire` itself; ``corrupt``/``truncate``/``torn``
#: are handed back to the site, which mangles its own data.
SITE_ACTIONS: Dict[str, Sequence[str]] = {
    "parallel.worker": ("crash", "hang", "raise"),
    "attribute.task": ("raise",),
    "io.packet_row": ("corrupt",),
    "npz.member": ("truncate",),
    "checkpoint.save": ("torn",),
    "shard.manifest": ("torn",),
    "follow.tail": ("raise", "crash"),
    "follow.evict": ("raise", "crash"),
    "transport.dispatch": ("drop", "raise"),
    "transport.collect": ("corrupt",),
    "transport.worker": ("crash", "hang", "raise"),
}

#: Exit code of an injected ``crash`` — distinctive in worker logs.
CRASH_EXIT_CODE = 173


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: *what* happens *where*, on *which* hit.

    ``hit`` is the 1-based ordinal of the :func:`fire` call (per
    process, per site) the fault strikes on; ``None`` strikes on every
    call — the poison-task shape. ``arg`` parameterises the action:
    sleep seconds for ``hang``, surviving byte budget for ``truncate``,
    surviving size fraction for ``torn``.
    """

    site: str
    action: str
    hit: Optional[int] = 1
    arg: float = 0.0

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(f"unknown fault site {self.site!r}")
        if self.action not in SITE_ACTIONS[self.site]:
            raise ValueError(
                f"action {self.action!r} not valid at site {self.site!r} "
                f"(valid: {SITE_ACTIONS[self.site]})"
            )

    def matches(self, n: int) -> bool:
        """Does this spec strike on the ``n``-th hit of its site?"""
        return self.hit is None or self.hit == n


class FaultPlan:
    """An ordered set of :class:`FaultSpec`\\ s, optionally seeded.

    The first spec matching ``(site, hit)`` wins. Plans serialise to
    JSON (:meth:`to_json`/:meth:`from_json`) so they survive the env
    hook into ``spawn`` workers byte-for-byte.
    """

    def __init__(
        self, specs: Sequence[FaultSpec], seed: Optional[int] = None
    ) -> None:
        self.specs: List[FaultSpec] = list(specs)
        self.seed = seed

    @classmethod
    def random(
        cls,
        seed: int,
        n_faults: Optional[int] = None,
        sites: Sequence[str] = SITES,
    ) -> "FaultPlan":
        """A deterministic plan drawn from ``seed``.

        Sites come from ``sites``, actions from :data:`SITE_ACTIONS`,
        hits from 1..8. The same seed always yields the same plan.
        """
        rng = random.Random(seed)
        count = n_faults if n_faults is not None else rng.randint(1, 3)
        specs = []
        for _ in range(count):
            site = rng.choice(list(sites))
            action = rng.choice(list(SITE_ACTIONS[site]))
            arg = {
                "hang": 30.0,
                "truncate": float(rng.randint(0, 4096)),
                "torn": rng.uniform(0.2, 0.9),
            }.get(action, 0.0)
            specs.append(FaultSpec(site, action, rng.randint(1, 8), arg))
        return cls(specs, seed=seed)

    def match(self, site: str, n: int) -> Optional[FaultSpec]:
        """The first spec striking on the ``n``-th hit of ``site``."""
        for spec in self.specs:
            if spec.site == site and spec.matches(n):
                return spec
        return None

    def to_json(self) -> str:
        return json.dumps(
            {"seed": self.seed, "specs": [asdict(s) for s in self.specs]}
        )

    @classmethod
    def from_json(cls, payload: str) -> "FaultPlan":
        data = json.loads(payload)
        return cls(
            [FaultSpec(**entry) for entry in data["specs"]],
            seed=data.get("seed"),
        )

    def __repr__(self) -> str:
        return f"FaultPlan(seed={self.seed}, specs={self.specs})"


# ----------------------------------------------------------------------
# Per-process armed state
# ----------------------------------------------------------------------
_PLAN: Optional[FaultPlan] = None
_COUNTS: Dict[str, int] = {}
_ENV_CHECKED = False


def install(plan: FaultPlan) -> None:
    """Arm ``plan`` in this process and export it through the env hook.

    ``fork`` workers created afterwards inherit the armed state;
    ``spawn`` workers read ``os.environ[ENV_VAR]`` on their first
    :func:`fire`. Site counters restart from zero.
    """
    global _PLAN
    _PLAN = plan
    _COUNTS.clear()
    os.environ[ENV_VAR] = plan.to_json()


def uninstall() -> None:
    """Disarm: clear the plan, the counters and the env hook."""
    global _PLAN, _ENV_CHECKED
    _PLAN = None
    _ENV_CHECKED = False
    _COUNTS.clear()
    os.environ.pop(ENV_VAR, None)


@contextmanager
def installed(plan: FaultPlan) -> Iterator[FaultPlan]:
    """``with installed(plan): ...`` — arm, then always disarm."""
    install(plan)
    try:
        yield plan
    finally:
        uninstall()


def active_plan() -> Optional[FaultPlan]:
    """The armed plan, loading it from the env hook on first call."""
    global _PLAN, _ENV_CHECKED
    if _PLAN is None and not _ENV_CHECKED:
        _ENV_CHECKED = True
        payload = os.environ.get(ENV_VAR)
        if payload:
            _PLAN = FaultPlan.from_json(payload)
    return _PLAN


def fire_count(site: str) -> int:
    """How many times ``site`` has fired in this process."""
    return _COUNTS.get(site, 0)


def fire(
    site: str, path: Optional[Union[str, Path]] = None
) -> Optional[FaultSpec]:
    """Declare one pass through a fault site.

    Returns ``None`` (the overwhelmingly common case: no plan, or no
    spec striking this hit). A striking ``crash``/``hang``/``raise``
    spec is applied here; the data-mangling actions are returned for
    the site to apply — except ``torn``, which truncates ``path``
    in place when the caller provides it.
    """
    plan = active_plan()
    if plan is None:
        return None
    n = _COUNTS.get(site, 0) + 1
    _COUNTS[site] = n
    spec = plan.match(site, n)
    if spec is None:
        return None
    if spec.action == "crash":
        os._exit(CRASH_EXIT_CODE)
    if spec.action == "hang":
        # Overslept well past any sane task timeout; the parent kills
        # the worker long before this returns.
        time.sleep(spec.arg or 3600.0)
        return None
    if spec.action == "raise":
        raise FaultInjected(f"injected fault at {site} (hit {n})")
    if spec.action == "torn" and path is not None:
        _truncate_file(path, spec.arg or 0.5)
    return spec


def corrupt_row(row: Dict[str, str]) -> Dict[str, str]:
    """The ``corrupt`` action: mangle one raw CSV row dict.

    The size field turns to garbage *before* any token is parsed or any
    app name registered, so a quarantining reader drops the row with no
    side effects on the registry.
    """
    bad = dict(row)
    bad["size"] = "###corrupt###"
    return bad


class TruncatedStream:
    """The ``truncate`` action: a read stream that ends early.

    Wraps a readable handle so at most ``budget`` bytes come out, then
    ``b""`` forever — exactly what a truncated archive member looks
    like to :func:`repro.stream.chunks._read_exactly`.
    """

    def __init__(self, handle, budget: int) -> None:
        self._handle = handle
        self._budget = max(int(budget), 0)

    def read(self, n: int = -1) -> bytes:
        if self._budget <= 0:
            return b""
        if n is None or n < 0:
            n = self._budget
        piece = self._handle.read(min(n, self._budget))
        self._budget -= len(piece)
        return piece


def maybe_truncate_stream(site: str, handle):
    """Fire ``site``; wrap ``handle`` if a ``truncate`` spec strikes."""
    spec = fire(site)
    if spec is not None and spec.action == "truncate":
        return TruncatedStream(handle, int(spec.arg))
    return handle


def _truncate_file(path: Union[str, Path], fraction: float) -> None:
    """The ``torn`` action: keep only the leading ``fraction`` bytes."""
    path = Path(path)
    size = path.stat().st_size
    keep = max(int(size * min(max(fraction, 0.0), 1.0)), 0)
    with open(path, "r+b") as handle:
        handle.truncate(keep)
