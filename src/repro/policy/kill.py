"""§5's kill policy on the :class:`CounterfactualPolicy` protocol.

The paper proposes that the OS kill apps that have stayed in the
background for several consecutive days without foreground use, and
simulates a 3-day threshold on the traces (Table 2). The day
classification, idle counter and drop-mask construction here are the
(formerly ``core.whatif``) reference implementations; the Table-2
reporting entry points are kept for compatibility and now drive the
shared transform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, List, Optional, Tuple

import numpy as np

from repro.errors import AnalysisError
from repro.policy.base import (
    PolicyContext,
    PolicyParams,
    PolicyTransform,
    drop_packets,
)
from repro.policy.engine import TotalSavings, evaluate_policy
from repro.radio.attribution import attribute_energy
from repro.trace.index import TraceIndex
from repro.units import DAY

#: The paper's proposed idle threshold, days.
DEFAULT_IDLE_DAYS = 3


def max_bounded_run(fg: np.ndarray, bg_only: np.ndarray) -> int:
    """Longest run of bg-only days with foreground days on both sides.

    Days with neither foreground nor background traffic break a run —
    the app was not producing anything to save.
    """
    best = 0
    run = 0
    seen_fg = False
    for day in range(len(fg)):
        if fg[day]:
            if seen_fg:
                best = max(best, run)
            run = 0
            seen_fg = True
        elif bg_only[day] and seen_fg:
            run += 1
        else:
            run = 0
    return best


def killed_days(fg: np.ndarray, bg: np.ndarray, idle_days: int) -> np.ndarray:
    """Days on which the policy would have the app dead.

    The idle counter counts consecutive days without foreground use
    while the app is emitting background traffic; once it reaches
    ``idle_days`` the app is killed until the next foreground day.
    """
    n = len(fg)
    killed = np.zeros(n, dtype=bool)
    idle = 0
    dead = False
    for day in range(n):
        if fg[day]:
            idle = 0
            dead = False
            continue
        if bg[day] or dead:
            idle += 1
        if idle >= idle_days:
            dead = True
            killed[day] = True
    return killed


def killed_drop_mask(
    index: TraceIndex, app_id: int, killed: np.ndarray, start: float
) -> np.ndarray:
    """Boolean drop mask over the trace's original packets: the app's
    background packets on killed days."""
    packets = index.packets
    idx = index.app_background_indices(app_id)
    days = ((packets.timestamps[idx] - start) // DAY).astype(np.int64)
    days = np.clip(days, 0, len(killed) - 1)
    drop = np.zeros(len(packets), dtype=bool)
    drop[idx[killed[days]]] = True
    return drop


def app_traffic_days(
    index: TraceIndex, start: float, end: float, app_id: int
) -> Tuple[np.ndarray, np.ndarray]:
    """(has-foreground-traffic, has-background-traffic) day masks.

    Pure over the trace index and window — the same classification
    ``StudyEnergy.app_days_with_traffic`` computes.
    """
    n_days = int(np.ceil((end - start) / DAY))
    ts = index.packets.timestamps
    fg = np.zeros(n_days, dtype=bool)
    bg = np.zeros(n_days, dtype=bool)
    fg_days = (
        (ts[index.app_foreground_indices(app_id)] - start) // DAY
    ).astype(np.int64)
    bg_days = (
        (ts[index.app_background_indices(app_id)] - start) // DAY
    ).astype(np.int64)
    fg[np.unique(fg_days)] = True
    bg[np.unique(bg_days)] = True
    return fg, bg


@dataclass(frozen=True)
class KillIdlePolicy(PolicyParams):
    """Kill apps idle in the background for ``idle_days`` straight days.

    ``apps`` restricts the policy to named packages (``None`` = every
    app on the device, the paper's OS-wide reading).
    """

    name: ClassVar[str] = "kill"

    idle_days: int = DEFAULT_IDLE_DAYS
    apps: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.idle_days < 1:
            raise AnalysisError(f"idle_days must be >= 1: {self.idle_days}")

    def transform(self, packets, context: PolicyContext) -> PolicyTransform:
        drop = np.zeros(len(packets), dtype=bool)
        for app_id in context.candidate_apps(self.apps):
            fg, bg = app_traffic_days(
                context.index, context.start, context.end, app_id
            )
            killed = killed_days(fg, bg, self.idle_days)
            if killed.any():
                # Each app's drop mask touches only that app's rows, so
                # the union equals applying the drops one after another.
                drop |= killed_drop_mask(
                    context.index, app_id, killed, context.start
                )
        return drop_packets(packets, drop)


@dataclass(frozen=True)
class UserKillOutcome:
    """Per-user effect of the kill policy on one app."""

    user_id: int
    app_energy_before: float
    app_energy_after: float
    killed_days: int
    bg_only_days: int
    traffic_days: int
    max_consecutive_bg_only: int

    @property
    def reduction(self) -> float:
        """Fractional app-energy reduction for this user."""
        if self.app_energy_before <= 0:
            return 0.0
        return 1.0 - self.app_energy_after / self.app_energy_before


@dataclass(frozen=True)
class KillPolicyResult:
    """Table 2 row: one app under the kill-after-N-idle-days policy."""

    app: str
    idle_days: int
    per_user: Tuple[UserKillOutcome, ...]

    @property
    def pct_background_only_days(self) -> float:
        """Row A: % of traffic days with only background traffic."""
        bg = sum(u.bg_only_days for u in self.per_user)
        days = sum(u.traffic_days for u in self.per_user)
        return 100.0 * bg / days if days else 0.0

    @property
    def max_consecutive_background_days(self) -> int:
        """Row B: longest fg-bounded run of background-only days."""
        if not self.per_user:
            return 0
        return max(u.max_consecutive_bg_only for u in self.per_user)

    @property
    def avg_energy_reduction_pct(self) -> float:
        """Row C: per-user average % reduction of the app's energy."""
        if not self.per_user:
            return 0.0
        return 100.0 * float(np.mean([u.reduction for u in self.per_user]))


def kill_policy_savings(
    study,
    app: str,
    idle_days: int = DEFAULT_IDLE_DAYS,
) -> KillPolicyResult:
    """Table 2: simulate killing ``app`` after ``idle_days`` idle days.

    The modified trace is re-attributed through the full radio model so
    that removed tails and promotions are credited exactly.
    """
    from repro.core.readout import require_packet_detail

    require_packet_detail(study, "kill_policy_savings")
    policy = KillIdlePolicy(idle_days=idle_days, apps=(app,))
    app_id = study.dataset.registry.id_of(app)
    outcomes: List[UserKillOutcome] = []
    for trace in study.dataset:
        before = study.user_app_energy(trace.user_id, app_id)
        if before <= 0:
            continue
        index = study.index_for(trace.user_id)
        fg, bg = app_traffic_days(index, trace.start, trace.end, app_id)
        bg_only = bg & ~fg
        killed = killed_days(fg, bg, idle_days)
        if killed.any():
            context = PolicyContext(
                index=index,
                start=trace.start,
                end=trace.end,
                id_of=study.dataset.registry.id_of,
            )
            out = policy.transform(trace.packets, context)
            result = attribute_energy(
                study.model,
                out.packets,
                window=(trace.start, trace.end),
                policy=study.policy,
            )
            after = result.energy_by_app().get(app_id, 0.0)
        else:
            after = before
        outcomes.append(
            UserKillOutcome(
                user_id=trace.user_id,
                app_energy_before=before,
                app_energy_after=after,
                killed_days=int(killed.sum()),
                bg_only_days=int(bg_only.sum()),
                traffic_days=int((fg | bg).sum()),
                max_consecutive_bg_only=max_bounded_run(fg, bg_only),
            )
        )
    if not outcomes:
        raise AnalysisError(f"no user has energy attributed to {app!r}")
    return KillPolicyResult(app=app, idle_days=idle_days, per_user=tuple(outcomes))


def total_savings(
    study,
    idle_days: int = DEFAULT_IDLE_DAYS,
    apps=None,
) -> TotalSavings:
    """Apply the kill policy to every app (or ``apps``) simultaneously
    and measure total attributed-energy savings.

    The paper finds this is <1% on average — each individual app is a
    small share of a device's total — even though per-app savings
    (Table 2 row C) can exceed 50%.
    """
    policy = KillIdlePolicy(
        idle_days=idle_days, apps=None if apps is None else tuple(apps)
    )
    return evaluate_policy(study, policy).savings


def savings_on_affected_days(
    study, app: str, idle_days: int = DEFAULT_IDLE_DAYS
) -> float:
    """% reduction of users' *total* energy on days the kill is active.

    The paper's strongest single number: for users running Weibo,
    disabling it after 3 idle days cut their total network energy on
    those days by 16%.
    """
    from repro.core.readout import require_packet_detail

    require_packet_detail(study, "savings_on_affected_days")
    policy = KillIdlePolicy(idle_days=idle_days, apps=(app,))
    app_id = study.dataset.registry.id_of(app)
    affected_before = 0.0
    affected_after = 0.0
    for trace in study.dataset:
        index = study.index_for(trace.user_id)
        fg, bg = app_traffic_days(index, trace.start, trace.end, app_id)
        killed = killed_days(fg, bg, idle_days)
        if not killed.any():
            continue
        daily_before = study.daily_energy(trace.user_id)
        context = PolicyContext(
            index=index,
            start=trace.start,
            end=trace.end,
            id_of=study.dataset.registry.id_of,
        )
        kept = policy.transform(trace.packets, context).packets
        result = attribute_energy(
            study.model, kept, window=(trace.start, trace.end), policy=study.policy
        )
        days = ((kept.timestamps - trace.start) // DAY).astype(np.int64)
        daily_after = np.bincount(
            days, weights=result.per_packet, minlength=len(daily_before)
        )[: len(daily_before)]
        affected_before += float(daily_before[killed].sum())
        affected_after += float(daily_after[killed].sum())
    if affected_before <= 0:
        raise AnalysisError(f"the policy never activates for {app!r}")
    return 100.0 * (1.0 - affected_after / affected_before)
