"""Drop-style counterfactual policies: doze, frequency caps, push.

Three families from the optimization-taxonomy literature that suppress
background traffic outright (as opposed to delaying it — see
:mod:`repro.policy.shifts`):

* :class:`DozePolicy` — Android M's announced behaviour: background
  traffic stops once the screen has been off long enough.
* :class:`FrequencyCapPolicy` — Windows-Phone-style scheduled agents:
  background tasks may run at most once per ``min_period``.
* :class:`PushConversionPolicy` — convert polling to push: background
  bursts that move almost no payload are empty polls a push channel
  would have eliminated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Optional, Tuple

import numpy as np

from repro.errors import AnalysisError
from repro.policy.base import (
    PolicyContext,
    PolicyParams,
    PolicyTransform,
    drop_packets,
)
from repro.policy.engine import TotalSavings, evaluate_policy

#: Packets of a surviving burst within this window are kept too.
BURST_WINDOW_S = 30.0

#: Silence that separates two background bursts of one app.
DEFAULT_BURST_GAP_S = 60.0


@dataclass(frozen=True)
class DozePolicy(PolicyParams):
    """Suppress background traffic after the screen has been off a while.

    Whitelisted apps (the paper suggests widgets may legitimately need
    exemptions) are untouched. Models Android M's announced behaviour.
    """

    name: ClassVar[str] = "doze"

    screen_off_threshold: float = 3600.0
    whitelist: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.screen_off_threshold <= 0:
            raise AnalysisError(
                "screen_off_threshold must be positive: "
                f"{self.screen_off_threshold}"
            )

    def transform(self, packets, context: PolicyContext) -> PolicyTransform:
        ts = packets.timestamps
        # Time since the screen last turned off (0 while on).
        screen = context.index.events.screen_events
        ev_times = np.array([e.timestamp for e in screen])
        ev_on = np.array([e.on for e in screen], dtype=bool)
        idx = np.searchsorted(ev_times, ts, side="right") - 1
        off_since = np.where(
            (idx >= 0) & ~ev_on[np.clip(idx, 0, None)],
            ts - ev_times[np.clip(idx, 0, None)],
            0.0,
        )
        is_bg = context.index.background_mask
        drop = is_bg & (off_since > self.screen_off_threshold)
        exempt = set(context.resolve_apps(self.whitelist) or ())
        if exempt:
            drop &= ~np.isin(packets.apps, np.array(sorted(exempt)))
        return drop_packets(packets, drop)


@dataclass(frozen=True)
class FrequencyCapPolicy(PolicyParams):
    """Cap background task frequency (Windows Phone's scheduled agents).

    Keeps, per app and device, only the background bursts that start at
    least ``min_period`` after the previous surviving burst; later
    packets of a surviving burst (within 30 s) are kept too.
    """

    name: ClassVar[str] = "frequency-cap"

    min_period: float = 1800.0
    apps: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.min_period <= 0:
            raise AnalysisError(
                f"min_period must be positive: {self.min_period}"
            )

    def transform(self, packets, context: PolicyContext) -> PolicyTransform:
        index = context.index
        keep = np.ones(len(packets), dtype=bool)
        ts = packets.timestamps
        for app_id in context.candidate_apps(self.apps):
            idx = index.app_background_indices(app_id)
            if len(idx) == 0:
                continue
            app_ts = ts[idx]
            last_kept = -np.inf
            for i, t in enumerate(app_ts):
                if t - last_kept >= self.min_period:
                    last_kept = t  # a new permitted task window opens
                elif t - last_kept > BURST_WINDOW_S:
                    keep[idx[i]] = False  # outside the task's burst
        return drop_packets(packets, ~keep)


@dataclass(frozen=True)
class PushConversionPolicy(PolicyParams):
    """Convert background polling to server push.

    Background bursts whose total payload is at most
    ``min_payload_bytes`` are empty polls — the request/response
    carried nothing an app couldn't have been told by a push
    notification, so a push channel removes the whole burst (and its
    radio tail). Bursts that actually move data are kept: push does
    not eliminate the transfer, only the asking.
    """

    name: ClassVar[str] = "push"

    min_payload_bytes: int = 512
    burst_gap: float = DEFAULT_BURST_GAP_S
    apps: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.min_payload_bytes < 0:
            raise AnalysisError(
                "min_payload_bytes must be >= 0: "
                f"{self.min_payload_bytes}"
            )
        if self.burst_gap <= 0:
            raise AnalysisError(
                f"burst_gap must be positive: {self.burst_gap}"
            )

    def transform(self, packets, context: PolicyContext) -> PolicyTransform:
        index = context.index
        ts = packets.timestamps
        sizes = packets.sizes.astype(np.int64)
        drop = np.zeros(len(packets), dtype=bool)
        for app_id in context.candidate_apps(self.apps):
            idx = index.app_background_indices(app_id)
            if len(idx) == 0:
                continue
            app_ts = ts[idx]
            starts = np.flatnonzero(
                np.concatenate(
                    ([True], np.diff(app_ts) > self.burst_gap)
                )
            )
            bounds = np.append(starts, len(app_ts))
            burst_bytes = np.add.reduceat(sizes[idx], starts)
            for b in np.flatnonzero(burst_bytes <= self.min_payload_bytes):
                drop[idx[bounds[b] : bounds[b + 1]]] = True
        return drop_packets(packets, drop)


def doze_savings(
    study,
    screen_off_threshold: float = 3600.0,
    whitelist=(),
) -> TotalSavings:
    """Doze-like extension: suppress all background traffic once the
    screen has been off for ``screen_off_threshold`` seconds."""
    policy = DozePolicy(
        screen_off_threshold=screen_off_threshold,
        whitelist=tuple(whitelist),
    )
    return evaluate_policy(study, policy).savings


def frequency_cap_savings(study, min_period: float = 1800.0) -> TotalSavings:
    """Windows-Phone-style policy: cap background task frequency."""
    return evaluate_policy(
        study, FrequencyCapPolicy(min_period=min_period)
    ).savings
