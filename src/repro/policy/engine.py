"""The one evaluator every counterfactual policy runs through.

``evaluate_policy`` walks the study's traces in dataset order, asks the
policy for each trace's counterfactual timeline, and re-attributes the
transformed packets through the full radio model — the honest
accounting the paper's §5 simulation established: removed or moved
packets give up their tails and promotions only where no concurrent
app still holds the radio up.

The walk accumulates the same floats, in the same order, as the legacy
``core.whatif`` entry points did, so the ported policies reproduce
their numbers bit-identically (asserted in
``tests/test_policy_properties.py``). When a transform returns the
original array object, the engine reuses the study's already-computed
attribution — no-op parameters cost nothing and save exactly zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.policy.base import CounterfactualPolicy, PolicyContext
from repro.radio.attribution import attribute_energy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.accounting import StudyEnergy


@dataclass(frozen=True)
class TotalSavings:
    """Device-level effect of a policy across all users."""

    total_before: float
    total_after: float
    per_user_pct: Tuple[float, ...]

    @property
    def overall_pct(self) -> float:
        """Total % reduction across the study."""
        if self.total_before <= 0:
            return 0.0
        return 100.0 * (1.0 - self.total_after / self.total_before)

    @property
    def mean_user_pct(self) -> float:
        """Average per-user % reduction."""
        return float(np.mean(self.per_user_pct)) if self.per_user_pct else 0.0


@dataclass(frozen=True)
class AppPolicyRow:
    """Table-2-style per-app effect of a policy."""

    app: str
    users: int
    energy_before: float
    energy_after: float
    user_reductions: Tuple[float, ...]

    @property
    def avg_reduction_pct(self) -> float:
        """Per-user average % reduction of the app's energy (row C)."""
        if not self.user_reductions:
            return 0.0
        return 100.0 * float(np.mean(self.user_reductions))

    @property
    def overall_pct(self) -> float:
        """% of the app's study-wide energy removed."""
        if self.energy_before <= 0:
            return 0.0
        return 100.0 * (1.0 - self.energy_after / self.energy_before)


@dataclass(frozen=True)
class PolicyResult:
    """One policy evaluated over one study."""

    policy: str
    model: str
    savings: TotalSavings
    moved_packets: int
    delay_seconds: float
    dropped_packets: int
    dropped_bytes: int
    app_rows: Tuple[AppPolicyRow, ...]

    @property
    def mean_delay(self) -> float:
        """Average added delay per moved packet, seconds."""
        if self.moved_packets <= 0:
            return 0.0
        return self.delay_seconds / self.moved_packets


def evaluate_policy(
    study: "StudyEnergy",
    policy: CounterfactualPolicy,
    apps: Sequence[str] = (),
) -> PolicyResult:
    """Evaluate one policy over a study, re-attributing transformed traces.

    ``apps`` selects package names to break out Table-2 style (per-app
    before/after energy and per-user reductions); study-wide savings
    are always computed. Raises ``NeedsPacketDetail`` on totals-only
    readouts — counterfactuals replay packets.
    """
    from repro.core.readout import require_packet_detail

    require_packet_detail(study, f"policy {policy.name}")
    registry = study.dataset.registry
    app_ids = [(name, registry.id_of(name)) for name in apps]

    total_before = 0.0
    total_after = 0.0
    per_user: List[float] = []
    moved = 0
    delay_sum = 0.0
    dropped_packets = 0
    dropped_bytes = 0
    app_acc: Dict[str, List] = {
        name: [0, 0.0, 0.0, []] for name, _ in app_ids
    }

    for trace in study.dataset:
        before_result = study.user_result(trace.user_id)
        before = before_result.attributed_energy
        context = PolicyContext(
            index=study.index_for(trace.user_id),
            start=trace.start,
            end=trace.end,
            id_of=registry.id_of,
        )
        out = policy.transform(trace.packets, context)
        if out.packets is trace.packets:
            after_result = before_result
        else:
            after_result = attribute_energy(
                study.model,
                out.packets,
                window=(trace.start, trace.end),
                policy=study.policy,
            )
        after = after_result.attributed_energy
        total_before += before
        total_after += after
        per_user.append(100.0 * (1.0 - after / before) if before > 0 else 0.0)
        moved += out.moved_packets
        delay_sum += out.delay_seconds
        if out.packets is not trace.packets:
            dropped_packets += len(trace.packets) - len(out.packets)
            dropped_bytes += int(trace.packets.sizes.sum()) - int(
                out.packets.sizes.sum()
            )
        if app_ids:
            by_before = before_result.energy_by_app()
            by_after = after_result.energy_by_app()
            for name, app_id in app_ids:
                app_before = by_before.get(app_id, 0.0)
                if app_before <= 0:
                    continue
                app_after = by_after.get(app_id, 0.0)
                acc = app_acc[name]
                acc[0] += 1
                acc[1] += app_before
                acc[2] += app_after
                acc[3].append(1.0 - app_after / app_before)

    return PolicyResult(
        policy=getattr(policy, "spec", policy.name),
        model=study.model.name,
        savings=TotalSavings(total_before, total_after, tuple(per_user)),
        moved_packets=moved,
        delay_seconds=delay_sum,
        dropped_packets=dropped_packets,
        dropped_bytes=dropped_bytes,
        app_rows=tuple(
            AppPolicyRow(
                app=name,
                users=acc[0],
                energy_before=acc[1],
                energy_after=acc[2],
                user_reductions=tuple(acc[3]),
            )
            for name, acc in app_acc.items()
        ),
    )
