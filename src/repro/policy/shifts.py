"""Shift-style counterfactual policies: coalescing, batching, deadlines.

These delay background traffic instead of dropping it — the cost is
freshness, not data. Three schedulers:

* :class:`OsCoalescingPolicy` — §6's iOS discussion: the OS delays all
  apps' background transfers to one device-wide grid, so they share
  promotions and tails.
* :class:`AppBatchingPolicy` — Guner et al.'s application-layer tuning:
  each app batches its *own* background transfers to one burst every
  ``period`` seconds, anchored at its first transfer (no cross-app
  alignment — the saving the app can get without OS help).
* :class:`DelayTolerantPolicy` — delay-tolerant scheduling from the
  taxonomy SLR: a background burst may wait up to ``deadline`` seconds
  to piggyback on the device's next foreground activity (the radio is
  up anyway); bursts with no such opportunity run on time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Optional, Tuple

import numpy as np

from repro.errors import AnalysisError
from repro.policy.base import (
    PolicyContext,
    PolicyParams,
    PolicyTransform,
    unchanged,
)
from repro.policy.drops import DEFAULT_BURST_GAP_S
from repro.policy.engine import evaluate_policy
from repro.trace.arrays import PacketArray


@dataclass(frozen=True)
class OsCoalescingPolicy(PolicyParams):
    """OS-managed background scheduling (§6's iOS model).

    Every background-state packet is delayed to the next multiple of
    ``period`` from the trace start, so all apps' background transfers
    on a device fire together and share promotions and tails.
    """

    name: ClassVar[str] = "coalesce"

    period: float = 1800.0
    apps: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise AnalysisError(f"period must be positive: {self.period}")

    def transform(self, packets, context: PolicyContext) -> PolicyTransform:
        is_bg = context.index.background_mask
        if self.apps is not None:
            app_ids = context.resolve_apps(self.apps)
            is_bg = is_bg & np.isin(packets.apps, np.array(sorted(app_ids)))
        if not is_bg.any():
            return unchanged(packets)
        data = packets.data.copy()
        ts = data["timestamp"]
        rel = ts[is_bg] - context.start
        shifted = np.ceil(rel / self.period) * self.period + context.start
        # Keep everything inside the observation window.
        shifted = np.minimum(shifted, context.end - 1e-6)
        delay = float((shifted - ts[is_bg]).sum())
        moved = int(is_bg.sum())
        data["timestamp"][is_bg] = shifted
        return PolicyTransform(
            packets=PacketArray(data).sorted_by_time(),
            moved_packets=moved,
            delay_seconds=delay,
        )


@dataclass(frozen=True)
class AppBatchingPolicy(PolicyParams):
    """Application-layer batching: one background burst per period.

    Each selected app's background packets are delayed to the next
    multiple of ``period`` after that app's *own* first background
    transfer — per-app grids, so nothing aligns across apps. The gap
    to :class:`OsCoalescingPolicy` on the same study is exactly the
    value of OS-level coordination.
    """

    name: ClassVar[str] = "batching"

    period: float = 1800.0
    apps: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise AnalysisError(f"period must be positive: {self.period}")

    def transform(self, packets, context: PolicyContext) -> PolicyTransform:
        data = None
        moved = 0
        delay = 0.0
        for app_id in context.candidate_apps(self.apps):
            idx = context.index.app_background_indices(app_id)
            if len(idx) == 0:
                continue
            if data is None:
                data = packets.data.copy()
            app_ts = packets.timestamps[idx]
            anchor = app_ts[0]
            shifted = anchor + np.ceil((app_ts - anchor) / self.period) * self.period
            shifted = np.minimum(shifted, context.end - 1e-6)
            delay += float((shifted - app_ts).sum())
            moved += len(idx)
            data["timestamp"][idx] = shifted
        if data is None:
            return unchanged(packets)
        return PolicyTransform(
            packets=PacketArray(data).sorted_by_time(),
            moved_packets=moved,
            delay_seconds=delay,
        )


@dataclass(frozen=True)
class DelayTolerantPolicy(PolicyParams):
    """Deadline scheduling: piggyback on the next foreground activity.

    A background burst may wait up to ``deadline`` seconds for the
    device's next foreground packet; if one arrives in time, the whole
    burst moves to it (the radio is already up — the burst rides an
    existing promotion and tail). Bursts whose deadline passes first
    run at their original time: the policy never drops traffic and
    never delays anything past its deadline.
    """

    name: ClassVar[str] = "deadline"

    deadline: float = 600.0
    burst_gap: float = DEFAULT_BURST_GAP_S
    apps: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.deadline < 0:
            raise AnalysisError(f"deadline must be >= 0: {self.deadline}")
        if self.burst_gap <= 0:
            raise AnalysisError(
                f"burst_gap must be positive: {self.burst_gap}"
            )

    def transform(self, packets, context: PolicyContext) -> PolicyTransform:
        index = context.index
        fg_times = packets.timestamps[index.foreground_mask]
        if len(fg_times) == 0 or self.deadline == 0:
            return unchanged(packets)
        data = None
        moved = 0
        delay = 0.0
        for app_id in context.candidate_apps(self.apps):
            idx = index.app_background_indices(app_id)
            if len(idx) == 0:
                continue
            app_ts = packets.timestamps[idx]
            starts = np.flatnonzero(
                np.concatenate(([True], np.diff(app_ts) > self.burst_gap))
            )
            bounds = np.append(starts, len(app_ts))
            pos = np.searchsorted(fg_times, app_ts[starts], side="left")
            for b in range(len(starts)):
                if pos[b] >= len(fg_times):
                    continue
                delta = float(fg_times[pos[b]] - app_ts[starts[b]])
                if not 0.0 < delta <= self.deadline:
                    continue
                if data is None:
                    data = packets.data.copy()
                rows = idx[bounds[b] : bounds[b + 1]]
                shifted = np.minimum(
                    packets.timestamps[rows] + delta, context.end - 1e-6
                )
                delay += float((shifted - packets.timestamps[rows]).sum())
                moved += len(rows)
                data["timestamp"][rows] = shifted
        if data is None:
            return unchanged(packets)
        return PolicyTransform(
            packets=PacketArray(data).sorted_by_time(),
            moved_packets=moved,
            delay_seconds=delay,
        )


@dataclass(frozen=True)
class CoalescingResult:
    """Effect of OS-level background batching (§6's iOS discussion)."""

    period: float
    total_before: float
    total_after: float
    moved_packets: int
    mean_delay: float

    @property
    def savings_pct(self) -> float:
        """% of attributed energy removed by coalescing."""
        if self.total_before <= 0:
            return 0.0
        return 100.0 * (1.0 - self.total_after / self.total_before)


def os_coalescing_savings(study, period: float = 1800.0) -> CoalescingResult:
    """Simulate OS-managed background scheduling.

    Unlike the kill policy, no traffic is dropped — the cost is
    freshness (mean added delay ~ period/2), which is also reported.
    """
    result = evaluate_policy(study, OsCoalescingPolicy(period=period))
    return CoalescingResult(
        period=period,
        total_before=result.savings.total_before,
        total_after=result.savings.total_after,
        moved_packets=result.moved_packets,
        mean_delay=result.mean_delay,
    )


def batching_savings(study, app: str, target_period: float) -> float:
    """Estimated % energy saving from batching an app's background
    bursts to one transfer every ``target_period`` seconds.

    A first-order model of §6's recommendation: each eliminated burst
    saves roughly one radio tail plus one promotion (the transfer bytes
    still have to move). Returns the saving as % of the app's current
    energy. For the honest re-attributed number, evaluate
    :class:`AppBatchingPolicy` through the engine instead.
    """
    from repro.core.periodicity import burst_starts
    from repro.core.readout import require_packet_detail
    from repro.units import DAY

    require_packet_detail(study, "batching_savings")
    if target_period <= 0:
        raise AnalysisError(f"target_period must be positive: {target_period}")
    app_id = study.dataset.registry.id_of(app)
    tail_cost = study.model.full_tail_energy + study.model.promotion_energy
    app_energy = 0.0
    saved = 0.0
    for trace in study.dataset:
        idx = study.index_for(trace.user_id).app_background_indices(app_id)
        if len(idx) == 0:
            continue
        result = study.user_result(trace.user_id)
        app_energy += float(result.per_packet[idx].sum())
        ts = trace.packets.timestamps[idx]
        starts = burst_starts(ts)
        if len(starts) < 2:
            continue
        # Batch within each day: background activity is often
        # concentrated (lingering episodes, waking hours), so comparing
        # against a uniform whole-study schedule would under-count.
        days = ((starts - trace.start) // DAY).astype(np.int64)
        for day in np.unique(days):
            day_starts = starts[days == day]
            if len(day_starts) < 2:
                continue
            span = float(day_starts[-1] - day_starts[0])
            batched = max(1, int(np.ceil(span / target_period)) + 1)
            eliminated = max(0, len(day_starts) - batched)
            saved += eliminated * tail_cost
    if app_energy <= 0:
        raise AnalysisError(f"no background energy attributed to {app!r}")
    return 100.0 * min(saved / app_energy, 1.0)
