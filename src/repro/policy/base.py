"""The counterfactual-policy protocol.

A :class:`CounterfactualPolicy` is a named, frozen bundle of parameters
with one behaviour: ``transform(packets, context)`` returns the packet
timeline the policy would have produced — packets dropped (kill, doze,
frequency caps, push conversion) or shifted (batching, coalescing,
delay-tolerant scheduling). The engine (:mod:`repro.policy.engine`)
re-runs full radio attribution on the transformed trace, so tail and
promotion effects across concurrent apps are handled honestly — the
same discipline the paper's §5 kill simulation uses.

Policies never mutate the input array: a transform either returns the
*original* ``PacketArray`` object (nothing to do — the engine then
reuses the already-attributed result, making no-op parameters exactly
free) or a new, time-sorted array.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import (
    ClassVar,
    Dict,
    Iterable,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

import numpy as np

from repro.trace.arrays import PacketArray
from repro.trace.index import TraceIndex


@dataclass(frozen=True)
class PolicyContext:
    """Everything a transform may consult besides the packets.

    ``index`` is the trace's shared :class:`TraceIndex` (app groupings,
    state masks, and — when built by ``UserTrace.index`` — the event
    log); ``start``/``end`` bound the observation window; ``id_of``
    resolves app package names to numeric ids.
    """

    index: TraceIndex
    start: float
    end: float
    id_of: "callable"

    def resolve_apps(
        self, apps: Optional[Iterable[str]]
    ) -> Optional[Tuple[int, ...]]:
        """App names -> ids; ``None`` means "every app"."""
        if apps is None:
            return None
        return tuple(self.id_of(a) for a in apps)

    def candidate_apps(self, apps: Optional[Iterable[str]]) -> Tuple[int, ...]:
        """The app ids a policy scoped by ``apps`` should touch."""
        resolved = self.resolve_apps(apps)
        if resolved is None:
            return tuple(int(a) for a in self.index.app_ids)
        return resolved


@dataclass(frozen=True)
class PolicyTransform:
    """A transformed packet view plus the freshness cost of producing it.

    ``packets`` is the counterfactual timeline (the *original* object
    when the policy is a no-op for this trace). ``moved_packets`` and
    ``delay_seconds`` report how many packets a shift-style policy
    delayed and by how much in total; drop-style policies leave them
    zero (the engine derives dropped packet/byte counts itself).
    """

    packets: PacketArray
    moved_packets: int = 0
    delay_seconds: float = 0.0


@runtime_checkable
class CounterfactualPolicy(Protocol):
    """What the engine requires of a policy."""

    name: ClassVar[str]

    def params(self) -> Dict[str, object]:
        """The policy's frozen parameters, by field name."""
        ...

    def transform(
        self, packets: PacketArray, context: PolicyContext
    ) -> PolicyTransform:
        """The counterfactual packet timeline for one trace."""
        ...


class PolicyParams:
    """Mixin giving frozen policy dataclasses ``params()`` and ``spec``."""

    name: ClassVar[str]

    def params(self) -> Dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @property
    def spec(self) -> str:
        """Canonical ``name(k=v, ...)`` string — provenance-stable.

        Sorted by parameter name, so it composes into store keys and
        ETags the way the attribution policy's repr already does.
        """
        inner = ", ".join(
            f"{k}={v!r}" for k, v in sorted(self.params().items())
        )
        return f"{self.name}({inner})"


def unchanged(packets: PacketArray) -> PolicyTransform:
    """The identity transform — signals the engine to reuse results."""
    return PolicyTransform(packets=packets)


def drop_packets(packets: PacketArray, drop: np.ndarray) -> PolicyTransform:
    """Apply a boolean drop mask (identity when nothing is dropped)."""
    if not drop.any():
        return unchanged(packets)
    return PolicyTransform(packets=packets.select(~drop))
