"""Counterfactual energy-optimization policies.

One protocol (:class:`CounterfactualPolicy`), one evaluator
(:func:`evaluate_policy`), seven policies: the paper's §5 kill
simulation plus the batching/coalescing, doze, frequency-cap,
push-conversion and delay-tolerant families from the optimization
taxonomy literature. Every policy transforms a packet timeline and is
re-attributed through the full radio model — per-app and study-wide
savings come out Table-2 style for any policy, under any registered
radio model (LTE/3G/WiFi/NR). See docs/POLICIES.md.
"""

from repro.policy.base import (
    CounterfactualPolicy,
    PolicyContext,
    PolicyParams,
    PolicyTransform,
)
from repro.policy.drops import (
    DozePolicy,
    FrequencyCapPolicy,
    PushConversionPolicy,
    doze_savings,
    frequency_cap_savings,
)
from repro.policy.engine import (
    AppPolicyRow,
    PolicyResult,
    TotalSavings,
    evaluate_policy,
)
from repro.policy.kill import (
    DEFAULT_IDLE_DAYS,
    KillIdlePolicy,
    KillPolicyResult,
    UserKillOutcome,
    app_traffic_days,
    kill_policy_savings,
    killed_days,
    killed_drop_mask,
    max_bounded_run,
    savings_on_affected_days,
    total_savings,
)
from repro.policy.registry import (
    available_policies,
    get_policy,
    parse_params,
    policy_class,
)
from repro.policy.shifts import (
    AppBatchingPolicy,
    CoalescingResult,
    DelayTolerantPolicy,
    OsCoalescingPolicy,
    batching_savings,
    os_coalescing_savings,
)

__all__ = [
    "AppBatchingPolicy",
    "AppPolicyRow",
    "CoalescingResult",
    "CounterfactualPolicy",
    "DEFAULT_IDLE_DAYS",
    "DelayTolerantPolicy",
    "DozePolicy",
    "FrequencyCapPolicy",
    "KillIdlePolicy",
    "KillPolicyResult",
    "OsCoalescingPolicy",
    "PolicyContext",
    "PolicyParams",
    "PolicyResult",
    "PolicyTransform",
    "PushConversionPolicy",
    "TotalSavings",
    "UserKillOutcome",
    "app_traffic_days",
    "available_policies",
    "batching_savings",
    "doze_savings",
    "evaluate_policy",
    "frequency_cap_savings",
    "get_policy",
    "kill_policy_savings",
    "killed_days",
    "killed_drop_mask",
    "max_bounded_run",
    "os_coalescing_savings",
    "parse_params",
    "policy_class",
    "savings_on_affected_days",
    "total_savings",
]
