"""Policy registry: counterfactual policies by name for the CLI.

Mirrors :mod:`repro.radio.registry`: ``available_policies()`` feeds
``argparse`` choices, ``get_policy(name, params)`` builds a frozen
policy from ``--param key=value`` strings, coercing each value against
the policy dataclass's field types (so ``--param idle_days=7`` is an
int, ``--param screen_off_threshold=inf`` a float, and
``--param apps=a,b`` a tuple of package names).
"""

from __future__ import annotations

from dataclasses import fields
from typing import Dict, List, Mapping, Type

from repro.errors import AnalysisError
from repro.policy.base import CounterfactualPolicy
from repro.policy.drops import (
    DozePolicy,
    FrequencyCapPolicy,
    PushConversionPolicy,
)
from repro.policy.kill import KillIdlePolicy
from repro.policy.shifts import (
    AppBatchingPolicy,
    DelayTolerantPolicy,
    OsCoalescingPolicy,
)

_POLICIES: Dict[str, Type] = {
    KillIdlePolicy.name: KillIdlePolicy,
    DozePolicy.name: DozePolicy,
    AppBatchingPolicy.name: AppBatchingPolicy,
    OsCoalescingPolicy.name: OsCoalescingPolicy,
    FrequencyCapPolicy.name: FrequencyCapPolicy,
    PushConversionPolicy.name: PushConversionPolicy,
    DelayTolerantPolicy.name: DelayTolerantPolicy,
}


def available_policies() -> List[str]:
    """Registered policy names."""
    return sorted(_POLICIES)


def policy_class(name: str) -> Type:
    """The policy dataclass registered under ``name``."""
    try:
        return _POLICIES[name.strip().lower()]
    except KeyError:
        raise AnalysisError(
            f"unknown policy {name!r}; available: {available_policies()}"
        ) from None


def _coerce(field_type: str, value: object) -> object:
    """Coerce one ``--param`` string against a dataclass field type."""
    if not isinstance(value, str):
        return value
    if value in ("none", "None"):
        return None
    if field_type == "int":
        return int(value)
    if field_type == "float":
        return float(value)
    if "Tuple[str, ...]" in field_type:
        if value in ("", "()"):
            return ()
        return tuple(part for part in value.split(",") if part)
    return value


def get_policy(
    name: str, params: Mapping[str, object] = ()
) -> CounterfactualPolicy:
    """Build a policy by name from (possibly string-valued) params."""
    cls = policy_class(name)
    known = {f.name: str(f.type) for f in fields(cls)}
    kwargs = {}
    for key, value in dict(params).items():
        if key not in known:
            raise AnalysisError(
                f"policy {cls.name!r} has no parameter {key!r}; "
                f"parameters: {sorted(known)}"
            )
        try:
            kwargs[key] = _coerce(known[key], value)
        except ValueError:
            raise AnalysisError(
                f"bad value {value!r} for {cls.name} parameter {key!r} "
                f"(expected {known[key]})"
            ) from None
    return cls(**kwargs)


def parse_params(pairs) -> Dict[str, str]:
    """``["k=v", ...]`` -> dict, as typed on the command line."""
    out: Dict[str, str] = {}
    for pair in pairs or ():
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise AnalysisError(
                f"bad --param {pair!r}: expected key=value"
            )
        out[key] = value
    return out
