"""Quickstart: generate a study, attribute energy, print the headlines.

Run:
    python examples/quickstart.py

Generates a small synthetic study (5 users, 14 days), runs the LTE
energy attribution, and prints the reproduction's headline numbers next
to the paper's, plus the top energy consumers.
"""

from repro import StudyConfig, StudyEnergy, generate_study
from repro.core import (
    background_energy_fraction,
    first_minute_fractions,
    top_consumers,
)
from repro.core.report import render_headlines, render_table
from repro.core.transitions import fraction_of_apps_above
from repro.units import MB


def main() -> None:
    print("Generating a 5-user, 14-day synthetic study ...")
    dataset = generate_study(StudyConfig(n_users=5, duration_days=14.0, seed=7))
    print(f"  {dataset}\n")

    study = StudyEnergy(dataset)  # paper's LTE model + tail attribution

    headlines = {
        "background energy fraction (paper: 0.84)": round(
            background_energy_fraction(study), 3
        ),
        "Chrome background energy fraction (paper: ~0.30)": round(
            background_energy_fraction(study, "com.android.chrome"), 3
        ),
        "apps sending >=80% of bg bytes in 1st minute (paper: 0.84)": round(
            fraction_of_apps_above(first_minute_fractions(dataset), 0.8), 3
        ),
        "total radio energy (kJ)": round(study.total_energy / 1e3, 1),
    }
    print(render_headlines(headlines))

    print()
    rows = top_consumers(study, n=8, by="energy")
    print(
        render_table(
            ["app", "kJ", "MB", "J/MB"],
            [
                (
                    r.app,
                    round(r.total_energy / 1e3, 1),
                    round(r.total_bytes / MB, 1),
                    round(r.joules_per_mb, 2),
                )
                for r in rows
            ],
            title="Top network energy consumers (cf. Fig 2)",
        )
    )


if __name__ == "__main__":
    main()
