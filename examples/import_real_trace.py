"""Feeding real measurement data into the analysis pipeline.

Run:
    python examples/import_real_trace.py

The synthetic generator stands in for data we cannot redistribute, but
every analysis consumes plain traces — so real collections plug in two
ways, both shown here on a tiny hand-written example:

1. **CSV interchange** (`repro.trace.io_text`): packets and events as
   simple CSVs (one pair per user), e.g. exported from tcpdump + a
   process-state logger.
2. **Raw device logs** (`repro.collect`): the line-oriented log formats
   the paper's collection software produced (packet capture, socket→app
   mapping, process/screen/input logs), parsed back into a dataset —
   including the unattributable-traffic bucket for packets whose
   process mapping was lost.
"""

import tempfile
from pathlib import Path

from repro import StudyEnergy
from repro.collect import (
    CollectionConfig,
    collect_dataset,
    parse_dataset,
)
from repro.core import background_energy_fraction, top_consumers
from repro.trace.io_text import dataset_from_csv

PACKETS_CSV = """timestamp,size,direction,app,conn
5.0,900,down,com.example.reader,1
5.1,120,up,com.example.reader,1
65.0,40000,down,com.example.reader,2
300.0,2000,down,com.example.sync,3
900.0,2000,down,com.example.sync,3
1500.0,2000,down,com.example.sync,3
"""

EVENTS_CSV = """timestamp,kind,app,value
0.0,process,com.example.reader,foreground
0.0,screen,,on
120.0,process,com.example.reader,background
120.0,screen,,off
0.0,process,com.example.sync,service
"""


def csv_path() -> None:
    print("1) CSV interchange")
    with tempfile.TemporaryDirectory() as tmp:
        packets = Path(tmp) / "packets.csv"
        events = Path(tmp) / "events.csv"
        packets.write_text(PACKETS_CSV)
        events.write_text(EVENTS_CSV)
        dataset = dataset_from_csv([(packets, events)])
        study = StudyEnergy(dataset)
        print(f"   imported: {dataset}")
        print(
            "   background energy fraction: "
            f"{background_energy_fraction(study):.2f}"
        )
        for row in top_consumers(study, n=2):
            print(
                f"   {row.app}: {row.total_energy:.1f} J over "
                f"{row.total_bytes} B ({row.joules_per_mb:.0f} J/MB)"
            )


def raw_logs_roundtrip() -> None:
    print("\n2) Raw device logs (the paper's collection format)")
    from repro import StudyConfig, generate_study

    dataset = generate_study(StudyConfig(n_users=2, duration_days=2.0, seed=9))
    with tempfile.TemporaryDirectory() as tmp:
        # Pretend this study was collected on-device, with 2% of the
        # socket (packet -> process) records lost in collection.
        collect_dataset(
            dataset, tmp, CollectionConfig(socket_record_loss=0.02, seed=1)
        )
        parsed = parse_dataset(tmp)
        study = StudyEnergy(parsed)
        print(f"   parsed: {parsed}")
        unattributed = [
            row
            for row in top_consumers(study, n=400)
            if row.app == "system.unattributed"
        ]
        if unattributed:
            print(
                "   unattributable traffic (lost mappings): "
                f"{unattributed[0].total_bytes / 1e6:.1f} MB — bucketed the "
                "way the paper handles delegated system traffic"
            )
        print(
            "   background energy fraction on parsed logs: "
            f"{background_energy_fraction(study):.2f}"
        )


if __name__ == "__main__":
    csv_path()
    raw_logs_roundtrip()
