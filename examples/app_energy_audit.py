"""App-design energy audit: what does *your* sync strategy cost?

Run:
    python examples/app_energy_audit.py

The paper's §4.2/§6 message to developers: the energy cost of
background sync is set by its *frequency*, not its bytes — each burst
pays an ~12 J LTE radio tail. This example uses the radio model and the
behaviour library directly (no full study needed) to price several sync
designs for a hypothetical app that moves 24 MB of updates per day,
then prices them again on 3G, on WiFi, and with fast dormancy.
"""

import numpy as np

from repro.radio import (
    LTE_DEFAULT,
    RadioStateMachine,
    UMTS_DEFAULT,
    WIFI_DEFAULT,
    lte_fast_dormancy_model,
)
from repro.core.report import render_table
from repro.trace.arrays import PacketArray
from repro.units import DAY, HOUR, MINUTE
from repro.workload.behavior import ConnAllocator, TrafficContext
from repro.workload.behaviors import PeriodicUpdateBehavior, PushNotificationBehavior
from repro.workload.rng import substream

#: The app needs to move this much per day, one way or another.
DAILY_BYTES = 24e6

DESIGNS = {
    "poll every 1 min": PeriodicUpdateBehavior(
        period=1 * MINUTE, bytes_per_update=DAILY_BYTES / (DAY / MINUTE)
    ),
    "poll every 5 min": PeriodicUpdateBehavior(
        period=5 * MINUTE, bytes_per_update=DAILY_BYTES / (DAY / (5 * MINUTE))
    ),
    "poll every 1 h (batched)": PeriodicUpdateBehavior(
        period=1 * HOUR, bytes_per_update=DAILY_BYTES / 24, packets_per_burst=8
    ),
    "poll every 6 h (batched)": PeriodicUpdateBehavior(
        period=6 * HOUR, bytes_per_update=DAILY_BYTES / 4, packets_per_burst=8
    ),
    "push (30 min keepalive)": PushNotificationBehavior(
        keepalive_period=30 * MINUTE,
        keepalive_bytes=1_000,
        push_mean_interval=1 * HOUR,
        push_bytes=DAILY_BYTES / 24,
    ),
}


def energy_per_day(behavior, model) -> float:
    """Simulate one day of the design in isolation on the given radio."""
    ctx = TrafficContext(1, 1, ConnAllocator(), DAY)
    block = behavior.generate(0.0, DAY, ctx, substream(1, behavior.describe()))
    order = np.argsort(block.timestamps, kind="stable")
    packets = PacketArray.from_columns(
        block.timestamps[order],
        block.sizes[order],
        block.directions[order],
        np.ones(len(block), dtype=np.uint16),
        block.conns[order],
    )
    sim = RadioStateMachine(model).simulate(
        packets, window=(0.0, DAY), record_intervals=False
    )
    # Attributed energy only: the radio's idle floor exists whether or
    # not this app does, so it is not part of the design's cost.
    return sim.attributed_energy


def main() -> None:
    rows = []
    for name, behavior in DESIGNS.items():
        lte = energy_per_day(behavior, LTE_DEFAULT)
        rows.append(
            (
                name,
                f"{lte:.0f}",
                f"{energy_per_day(behavior, lte_fast_dormancy_model()):.0f}",
                f"{energy_per_day(behavior, UMTS_DEFAULT):.0f}",
                f"{energy_per_day(behavior, WIFI_DEFAULT):.0f}",
            )
        )
    print(
        render_table(
            ["design (24 MB/day)", "LTE J/day", "LTE+FD", "3G", "WiFi"],
            rows,
            title="Background sync designs: radio energy per day",
        )
    )
    print(
        "\nTakeaways (the paper's §6 recommendations):\n"
        "  * batching dominates: the hourly batch moves the same bytes as\n"
        "    1-minute polling for a tiny fraction of the energy;\n"
        "  * fast dormancy recovers much of the tail cost;\n"
        "  * WiFi is one to two orders of magnitude cheaper per burst."
    )


if __name__ == "__main__":
    main()
