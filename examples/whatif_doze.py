"""OS policy what-ifs: killing idle apps, Doze, and batching (§5/§6).

Run:
    python examples/whatif_doze.py

Generates a study, then prices three OS/developer interventions:

1. the paper's proposal — kill apps after N consecutive days without
   foreground use (Table 2), swept over N;
2. a Doze-like policy — suppress background traffic once the screen has
   been off for an hour, with a widget whitelist;
3. the §6 developer recommendation — batch a chatty app's background
   updates.
"""

from repro import StudyConfig, StudyEnergy, generate_study
from repro.core.report import render_table, render_table2
from repro.core.whatif import (
    batching_savings,
    doze_savings,
    kill_policy_savings,
    savings_on_affected_days,
    total_savings,
)
from repro.errors import AnalysisError

APPS = (
    "com.sec.spp.push",
    "com.sina.weibo",
    "com.facebook.orca",
    "com.sec.android.widgetapp.ap.hero.accuweather",
)


def main() -> None:
    print("Generating a 10-user, 28-day study ...")
    dataset = generate_study(StudyConfig(n_users=10, duration_days=28.0, seed=23))
    study = StudyEnergy(dataset)

    # 1. Table 2 for four rarely-used apps.
    results = [kill_policy_savings(study, app) for app in APPS]
    print()
    print(render_table2(results))

    # Threshold sweep for the most killable app.
    sweep_rows = []
    for idle_days in (1, 2, 3, 5, 7):
        result = kill_policy_savings(study, "com.sina.weibo", idle_days=idle_days)
        sweep_rows.append((idle_days, f"{result.avg_energy_reduction_pct:.1f}"))
    print()
    print(
        render_table(
            ["kill after N idle days", "Weibo avg % energy cut"],
            sweep_rows,
            title="Threshold sweep (the paper picks N=3)",
        )
    )

    overall = total_savings(study)
    print(
        f"\nKilling every idle app saves {overall.overall_pct:.1f}% of total "
        "study energy — each app alone is a small share of a device's total,"
    )
    try:
        affected = savings_on_affected_days(study, "com.sina.weibo")
        print(
            f"but on the days the policy is active, Weibo users save "
            f"{affected:.1f}% of their *total* energy (paper: 16%)."
        )
    except AnalysisError:
        print("(the Weibo policy never activates in this sampled study).")

    # 2. Doze-like screen-off restriction, with and without a whitelist.
    plain = doze_savings(study, screen_off_threshold=3600.0)
    whitelisted = doze_savings(
        study,
        screen_off_threshold=3600.0,
        whitelist=("com.sec.android.widgetapp.ap.hero.accuweather",),
    )
    print(
        f"\nDoze-like policy (bg suppressed after 1 h screen-off): "
        f"{plain.overall_pct:.1f}% saved; "
        f"{whitelisted.overall_pct:.1f}% with the weather widget exempted."
    )

    # 3. Batching a chatty updater.
    rows = []
    for period, label in ((1800.0, "30 min"), (3600.0, "1 h"), (21600.0, "6 h")):
        rows.append((label, f"{batching_savings(study, 'com.sina.weibo', period):.1f}"))
    print()
    print(
        render_table(
            ["batch Weibo background updates to", "% of its energy saved"],
            rows,
            title="§6 developer recommendation: batching",
        )
    )


if __name__ == "__main__":
    main()
