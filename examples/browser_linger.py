"""Browser lingering traffic: the paper's §4.1 finding, end to end.

Run:
    python examples/browser_linger.py

Part 1 replays the in-lab validation: a page that polls every second,
opened in Chrome / Firefox / the stock browser, then minimised and the
screen turned off. Part 2 measures the same phenomenon "in the wild" on
a generated study: how long Chrome's traffic persists after each
transition to the background (Fig 5), and what share of each browser's
energy is spent in the background.
"""

import numpy as np

from repro import StudyConfig, StudyEnergy, generate_study
from repro.core.report import format_duration, render_table
from repro.core.statefrac import background_energy_fraction
from repro.core.transitions import persistence_durations
from repro.lab import (
    CHROME,
    FIREFOX,
    STOCK_BROWSER,
    browser_background_experiment,
    transit_page,
    xhr_test_page,
)


def in_lab() -> None:
    page = xhr_test_page()
    rows = []
    for browser in (CHROME, FIREFOX, STOCK_BROWSER):
        result = browser_background_experiment(browser, page)
        rows.append(
            (
                browser.name,
                result.phase_packets[0],
                result.phase_packets[1],
                result.phase_packets[2],
                f"{result.phase_energy[1] + result.phase_energy[2]:.0f}",
            )
        )
    print(
        render_table(
            ["browser", "foreground pkts", "minimised pkts", "screen-off pkts", "bg J"],
            rows,
            title="In-lab: XHR-every-second page (cf. §4.1 validation)",
        )
    )
    egregious = browser_background_experiment(CHROME, transit_page())
    bg_seconds = sum(p.duration for p in egregious.phases[1:])
    bg_energy = sum(egregious.phase_energy[1:])
    print(
        f"\nThe 'transit page' (poll every 2 s) holds the radio at "
        f"{bg_energy / bg_seconds:.2f} W for as long as it lives — "
        f"{bg_energy:.0f} J over {format_duration(bg_seconds)} minimised."
    )


def in_the_wild() -> None:
    print("\nGenerating an 8-user, 21-day study ...")
    dataset = generate_study(StudyConfig(n_users=8, duration_days=21.0, seed=17))
    study = StudyEnergy(dataset)

    rows = []
    for browser in ("com.android.chrome", "org.mozilla.firefox", "com.android.browser"):
        samples = persistence_durations(dataset, app=browser)
        durations = np.sort([s.duration for s in samples])
        rows.append(
            (
                browser,
                len(samples),
                format_duration(float(np.median(durations))),
                format_duration(float(np.percentile(durations, 95))),
                format_duration(float(durations.max())),
                f"{background_energy_fraction(study, browser) * 100:.0f}%",
            )
        )
    print(
        render_table(
            ["browser", "transitions", "median", "p95", "max", "bg energy"],
            rows,
            title="In the wild: traffic persistence after backgrounding (cf. Fig 5)",
        )
    )
    print(
        "\nChrome lets pages keep polling after it is minimised — its"
        " persistence tail and background-energy share dwarf Firefox's"
        " and the stock browser's, exactly as the paper reports."
    )


if __name__ == "__main__":
    in_lab()
    in_the_wild()
