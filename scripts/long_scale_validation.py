"""Long-duration validation runs behind EXPERIMENTS.md's addenda.

Usage:
    python scripts/long_scale_validation.py [DAYS ...]

For each duration (default: 84 180 400), generates the 20-user study,
then reports the duration-sensitive results:

* Fig 5's extreme persistence tail (the >6 h / >12 h / >1 day counts —
  the paper's "persist for more than a day" stragglers only appear at
  months of observation);
* Table 2 row B (max consecutive background-only days), which grows
  towards the paper's 623-day values with the window;
* generation cost, to document paper-scale feasibility.

Results print as JSON lines, one per duration.
"""

import json
import sys
import time

import numpy as np

from repro import StudyConfig, StudyEnergy, generate_study
from repro.core import kill_policy_savings, persistence_durations

TABLE2_APPS = (
    "com.sec.spp.push",
    "com.sina.weibo",
    "com.facebook.orca",
    "com.sec.android.widgetapp.ap.hero.accuweather",
)


def run(days: float, seed: int = 42) -> dict:
    """One validation run at the given duration."""
    started = time.time()
    dataset = generate_study(
        StudyConfig(n_users=20, duration_days=days, seed=seed)
    )
    generated = time.time()
    result = {
        "days": days,
        "gen_seconds": round(generated - started, 1),
        "packets": dataset.total_packets,
    }

    samples = persistence_durations(dataset, app="com.android.chrome")
    durations = np.array([s.duration for s in samples])
    result["chrome_transitions"] = len(durations)
    result["persistence_max_hours"] = round(float(durations.max()) / 3600.0, 1)
    result["persistence_over_6h"] = int((durations > 6 * 3600).sum())
    result["persistence_over_12h"] = int((durations > 12 * 3600).sum())
    result["persistence_over_1day"] = int((durations > 86400).sum())

    study = StudyEnergy(dataset)
    for app in TABLE2_APPS:
        row = kill_policy_savings(study, app)
        short = app.split(".")[-1]
        result[f"B_{short}"] = row.max_consecutive_background_days
        result[f"C_{short}"] = round(row.avg_energy_reduction_pct, 1)
    return result


def main() -> None:
    durations = [float(a) for a in sys.argv[1:]] or [84.0, 180.0, 400.0]
    for days in durations:
        print(json.dumps(run(days)), flush=True)


if __name__ == "__main__":
    main()
