#!/usr/bin/env bash
# End-to-end smoke test of the live-monitoring contract
# (docs/MONITORING.md): tail growing per-user CSVs with `repro follow`,
# see a streaming headline, SIGTERM the follower (exit 6), resume it
# (`--resume`), and prove the published live windows are byte-identical
# to a follower that was never interrupted. Finishes by serving the
# live store with `repro serve --live` and curling the /live routes.
#
# Run from anywhere; needs only python + numpy + curl. CI runs this as
# the follow-smoke job.
set -eu
cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
follow_pid=""
serve_pid=""
cleanup() {
    [ -n "$follow_pid" ] && kill "$follow_pid" 2>/dev/null || true
    [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

WINDOW="short=14400:3600"

echo "==> synthesise a tiny study as per-user CSV tails"
# The live-store key fingerprints fold in the tailed paths (the
# source signature), so the reference run and the interrupted run must
# tail the SAME files: write the full CSVs, run the reference over
# them, then truncate the packets back to half for the live run.
python - "$workdir" <<'EOF'
import sys
from pathlib import Path

from repro import StudyConfig, generate_study
from repro.trace.io_text import write_events_csv, write_packets_csv

work = Path(sys.argv[1])
dataset = generate_study(StudyConfig(n_users=2, duration_days=2.0, seed=23))
(work / "live").mkdir()
for user in dataset.users:
    packets = work / "live" / f"u{user.user_id}.csv"
    events = work / "live" / f"u{user.user_id}.events.csv"
    write_packets_csv(packets, user.packets, dataset.registry)
    write_events_csv(events, user.events, dataset.registry)
    # Stash the halves: the live run starts from ~half the packet
    # lines (header included, always whole lines) and the rest gets
    # appended mid-follow; events stay complete throughout.
    lines = packets.read_text().splitlines(keepends=True)
    half = 1 + (len(lines) - 1) // 2
    (work / f"half_u{user.user_id}").write_text("".join(lines[:half]))
    (work / f"rest_u{user.user_id}").write_text("".join(lines[half:]))
EOF

users_live=""
for u in "$workdir"/live/u*.csv; do
    [ "${u%.events.csv}" = "$u" ] || continue
    name="$(basename "$u")"
    users_live="$users_live --user $workdir/live/$name:$workdir/live/${name%.csv}.events.csv"
done

echo "==> reference: follow the complete tails to idle, publish to a store"
# shellcheck disable=SC2086
python -m repro.cli follow $users_live \
    --checkpoint "$workdir/ref.ckpt.npz" --store "$workdir/refstore" \
    --window "$WINDOW" --poll-interval 0.05 --idle-exit 2 \
    >"$workdir/ref.out"
grep -q "\[short #" "$workdir/ref.out" || {
    echo "FAIL: reference run emitted no headline"; cat "$workdir/ref.out"; exit 1;
}

echo "==> rewind the packet tails to their first half"
for half in "$workdir"/half_u*; do
    uid="${half##*half_}"
    cp "$half" "$workdir/live/$uid.csv"
done

echo "==> live: follow the half-written tails in the background"
# shellcheck disable=SC2086
python -m repro.cli follow $users_live \
    --checkpoint "$workdir/live.ckpt.npz" --store "$workdir/livestore" \
    --window "$WINDOW" --poll-interval 0.1 \
    >"$workdir/live.out" 2>&1 &
follow_pid=$!

for _ in $(seq 1 100); do
    grep -q "\[short #" "$workdir/live.out" 2>/dev/null && break
    kill -0 "$follow_pid" 2>/dev/null || {
        echo "follower exited early:"; cat "$workdir/live.out"; exit 1;
    }
    sleep 0.2
done
grep -q "\[short #" "$workdir/live.out" || {
    echo "FAIL: no live headline appeared"; cat "$workdir/live.out"; exit 1;
}
echo "    live headline seen: $(grep -m1 '\[short #' "$workdir/live.out")"

echo "==> append the rest of the rows while the follower runs"
for rest in "$workdir"/rest_u*; do
    uid="${rest##*rest_}"
    cat "$rest" >> "$workdir/live/$uid.csv"
done
sleep 1

echo "==> SIGTERM the follower: it must checkpoint and exit 6"
kill -TERM "$follow_pid"
rc=0; wait "$follow_pid" || rc=$?
follow_pid=""
[ "$rc" = 6 ] || {
    echo "FAIL: SIGTERM exit code $rc, wanted 6"; cat "$workdir/live.out"; exit 1;
}
[ -f "$workdir/live.ckpt.npz" ] || { echo "FAIL: no checkpoint"; exit 1; }
echo "    exit 6, checkpoint on disk"

echo "==> resume to idle; the published windows must match the reference"
# shellcheck disable=SC2086
python -m repro.cli follow $users_live \
    --checkpoint "$workdir/live.ckpt.npz" --store "$workdir/livestore" \
    --window "$WINDOW" --poll-interval 0.05 --idle-exit 2 --resume \
    >"$workdir/resume.out"

cmp "$workdir/refstore/live.json" "$workdir/livestore/live.json" || {
    echo "FAIL: live.json differs between interrupted and reference runs"
    diff "$workdir/refstore/live.json" "$workdir/livestore/live.json" || true
    exit 1
}
echo "    live.json byte-identical"

# Blob files are named by the store-key digest, and live keys fold the
# window's fold digest into the fingerprint — so an interrupted-and-
# resumed follower must produce the *same file names with the same
# bytes* as the uninterrupted reference.
python - "$workdir" <<'EOF'
import sys
from pathlib import Path

work = Path(sys.argv[1])
def blobs(store):
    return {
        p.name: p.read_bytes()
        for p in sorted((work / store / "blobs").iterdir())
        if p.suffix in (".txt", ".json")
    }
ref, live = blobs("refstore"), blobs("livestore")
assert ref, "reference store published nothing"
assert ref.keys() == live.keys(), (
    f"blob sets differ: {sorted(ref.keys() ^ live.keys())}"
)
for name, data in ref.items():
    assert live[name] == data, f"blob {name} differs byte-wise"
print(f"    {len(ref)} published blob(s) byte-identical across runs")
EOF

echo "==> serve the live store and curl the /live routes"
python -m repro.cli serve --live --store "$workdir/livestore" --port 0 --quiet \
    >"$workdir/serve.out" 2>&1 &
serve_pid=$!
base=""
for _ in $(seq 1 50); do
    if grep -q "serving live windows" "$workdir/serve.out" 2>/dev/null; then
        base="$(sed -n 's/.* on \(http:[^ ]*\).*/\1/p' "$workdir/serve.out")"
        break
    fi
    kill -0 "$serve_pid" 2>/dev/null || {
        echo "serve exited early:"; cat "$workdir/serve.out"; exit 1;
    }
    sleep 0.2
done
[ -n "$base" ] || { echo "no serve banner:"; cat "$workdir/serve.out"; exit 1; }

expect_status() {
    url="$1"; want="$2"; shift 2
    got="$(curl -s -o /dev/null -w '%{http_code}' "$@" "$url")"
    if [ "$got" != "$want" ]; then
        echo "FAIL: $url returned $got, wanted $want"
        exit 1
    fi
    echo "    $want $url"
}

expect_status "$base/live/" 200
expect_status "$base/live/short/headlines" 200
etag="$(curl -s -D - -o /dev/null "$base/live/short/headlines" \
    | tr -d '\r' | sed -n 's/^ETag: //p')"
[ -n "$etag" ] || { echo "FAIL: no ETag on /live/short/headlines"; exit 1; }
expect_status "$base/live/short/headlines" 304 -H "If-None-Match: $etag"
expect_status "$base/live/nope/headlines" 404
expect_status "$base/headlines" 404   # live-only server: no study loaded

echo "follow smoke: OK"
