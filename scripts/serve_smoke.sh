#!/usr/bin/env bash
# End-to-end smoke test of the serving contract (docs/SERVING.md):
# generate a tiny study, ingest it to a checkpoint, start `repro serve`
# against a fresh store, and curl every endpoint class — 200 with an
# ETag, 304 on revalidation, 404 with a reason for per-packet figures.
#
# Run from anywhere; needs only python + numpy + curl. CI runs this as
# the serve-smoke job.
set -eu
cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
serve_pid=""
cleanup() {
    [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "==> generate + ingest a tiny study"
python -m repro.cli generate --users 2 --days 4 --seed 11 \
    --out "$workdir/study.npz"
python -m repro.cli ingest --dataset "$workdir/study.npz" \
    --checkpoint "$workdir/ck.npz" >/dev/null

echo "==> start repro serve on an ephemeral port"
python -m repro.cli serve --from-checkpoint "$workdir/ck.npz" \
    --store "$workdir/store" --port 0 --quiet \
    >"$workdir/serve.out" 2>&1 &
serve_pid=$!

# The banner line is "serving study <id> on http://host:port (store: …)".
base=""
for _ in $(seq 1 50); do
    if grep -q "serving study" "$workdir/serve.out" 2>/dev/null; then
        base="$(sed -n 's/.* on \(http:[^ ]*\).*/\1/p' "$workdir/serve.out")"
        break
    fi
    kill -0 "$serve_pid" 2>/dev/null || {
        echo "serve exited early:"; cat "$workdir/serve.out"; exit 1;
    }
    sleep 0.2
done
[ -n "$base" ] || { echo "no serve banner:"; cat "$workdir/serve.out"; exit 1; }
echo "    $base"

expect_status() {
    url="$1"; want="$2"; shift 2
    got="$(curl -s -o /dev/null -w '%{http_code}' "$@" "$url")"
    if [ "$got" != "$want" ]; then
        echo "FAIL: $url returned $got, wanted $want"
        exit 1
    fi
    echo "    $want $url"
}

echo "==> store-backed endpoints answer 200"
expect_status "$base/" 200
expect_status "$base/figures/fig3" 200
expect_status "$base/tables/table1" 200
expect_status "$base/headlines" 200

echo "==> the index names the study; its readout serves as JSON"
study="$(curl -s "$base/" | python -c 'import json,sys; print(json.load(sys.stdin)["study"])')"
expect_status "$base/readouts/$study" 200

echo "==> conditional GET revalidates for free (304)"
etag="$(curl -s -D - -o /dev/null "$base/figures/fig3" \
    | tr -d '\r' | sed -n 's/^ETag: //p')"
[ -n "$etag" ] || { echo "FAIL: no ETag on /figures/fig3"; exit 1; }
expect_status "$base/figures/fig3" 304 -H "If-None-Match: $etag"

echo "==> per-packet figures refuse with 404, not wrong numbers"
expect_status "$base/figures/fig4" 404
expect_status "$base/readouts/not-the-study" 404

echo "serve smoke: OK"
