#!/usr/bin/env sh
# Tier-1 gate: the exact pytest line CI runs. Extra arguments are
# passed through, e.g.  scripts/check_tier1.sh -k stream
#
# --chaos runs only the seeded fault-injection suite (fixed seeds are
# baked into tests/test_chaos.py, so every invocation replays the same
# fault schedule); see docs/ROBUSTNESS.md.
set -e
cd "$(dirname "$0")/.."
if [ "$1" = "--chaos" ]; then
    shift
    set -- tests/test_chaos.py "$@"
fi
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} exec python -m pytest -x -q "$@"
