#!/usr/bin/env sh
# Tier-1 gate: the exact pytest line CI runs. Extra arguments are
# passed through, e.g.  scripts/check_tier1.sh -k stream
set -e
cd "$(dirname "$0")/.."
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} exec python -m pytest -x -q "$@"
