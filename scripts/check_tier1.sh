#!/usr/bin/env sh
# Tier-1 gate: the exact pytest line CI runs. Extra arguments are
# passed through, e.g.  scripts/check_tier1.sh -k stream
#
# --chaos runs only the seeded fault-injection suite (fixed seeds are
# baked into tests/test_chaos.py, so every invocation replays the same
# fault schedule); see docs/ROBUSTNESS.md.
#
# --cov runs the policy/radio test subset under coverage and fails
# below 90% line coverage of src/repro/policy and src/repro/radio —
# the two packages whose correctness rests on the property/differential
# layer (docs/POLICIES.md). Needs pytest-cov; skipped (exit 0, with a
# note) where it is not installed, so plain containers stay green.
set -e
cd "$(dirname "$0")/.."
if [ "$1" = "--chaos" ]; then
    shift
    set -- tests/test_chaos.py "$@"
fi
if [ "$1" = "--cov" ]; then
    shift
    if ! python -c "import pytest_cov" 2>/dev/null; then
        echo "check_tier1: pytest-cov not installed; skipping coverage gate"
        exit 0
    fi
    set -- \
        --cov=repro.policy --cov=repro.radio \
        --cov-report=term-missing --cov-fail-under=90 \
        tests/test_policy_properties.py tests/test_core_whatif.py \
        tests/test_radio_agreement.py tests/test_radio_vectorized.py \
        tests/test_radio_machine.py tests/test_stream.py "$@"
fi
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} exec python -m pytest -x -q "$@"
