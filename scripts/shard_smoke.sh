#!/usr/bin/env bash
# End-to-end smoke test of the sharding contract (docs/SCALING.md):
# generate a tiny study, plan/run/merge a sharded ingest, and prove
# the merged checkpoint is indistinguishable from the unsharded one —
# same figure bytes, same store key (a store warmed by the unsharded
# render answers --store-only for the merged checkpoint). Also proves
# the typed failure mode: merging an incomplete plan exits 5.
#
# Run from anywhere; needs only python + numpy. CI runs this as the
# shard-smoke job.
set -eu
cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
cleanup() { rm -rf "$workdir"; }
trap cleanup EXIT

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "==> generate a tiny study"
python -m repro.cli generate --users 3 --days 4 --seed 11 \
    --out "$workdir/study.npz"

echo "==> unsharded ingest (the reference checkpoint)"
python -m repro.cli ingest --dataset "$workdir/study.npz" \
    --checkpoint "$workdir/plain.ckpt.npz" >/dev/null

echo "==> shard plan / run / merge"
python -m repro.cli shard plan --dataset "$workdir/study.npz" \
    --shards 3 --out "$workdir/plan.json"
python -m repro.cli shard run "$workdir/plan.json" --shard-workers 2 --quiet
python -m repro.cli shard merge "$workdir/plan.json" \
    --out "$workdir/merged.ckpt.npz" >/dev/null

echo "==> merged and unsharded checkpoints render identical bytes"
python -m repro.cli figure fig3 \
    --from-checkpoint "$workdir/plain.ckpt.npz" >"$workdir/fig3.plain"
python -m repro.cli figure fig3 \
    --from-checkpoint "$workdir/merged.ckpt.npz" >"$workdir/fig3.merged"
cmp "$workdir/fig3.plain" "$workdir/fig3.merged" || {
    echo "FAIL: fig3 differs between merged and unsharded checkpoints"
    exit 1
}
echo "    fig3 byte-identical"

echo "==> the merged checkpoint derives the unsharded store key"
# Warm the store from the UNSHARDED checkpoint, then demand a cache
# hit (--store-only never renders) keyed by the MERGED one.
python -m repro.cli figure fig3 --from-checkpoint "$workdir/plain.ckpt.npz" \
    --store "$workdir/store" >/dev/null
python -m repro.cli figure fig3 --from-checkpoint "$workdir/merged.ckpt.npz" \
    --store "$workdir/store" --store-only >/dev/null || {
    echo "FAIL: store miss — sharded ingest changed the store key"
    exit 1
}
echo "    warm hit via the sharded key"

echo "==> an incomplete plan refuses to merge (exit 5)"
rm "$workdir/plan.json.shards/shard-1.ckpt.npz"
set +e
python -m repro.cli shard merge "$workdir/plan.json" \
    --out "$workdir/bad.ckpt.npz" 2>"$workdir/merge.err"
code=$?
set -e
if [ "$code" != 5 ]; then
    echo "FAIL: merge of incomplete plan exited $code, wanted 5"
    cat "$workdir/merge.err"
    exit 1
fi
grep -q "not mergeable" "$workdir/merge.err" || {
    echo "FAIL: no typed shard error on stderr"; cat "$workdir/merge.err"
    exit 1
}
echo "    exit 5 with a typed error naming the shard"

echo "==> rerun resumes only the missing shard, then the merge heals"
python -m repro.cli shard run "$workdir/plan.json" --shard-workers 2 --quiet
python -m repro.cli shard merge "$workdir/plan.json" \
    --out "$workdir/merged2.ckpt.npz" >/dev/null
python -m repro.cli figure fig3 \
    --from-checkpoint "$workdir/merged2.ckpt.npz" >"$workdir/fig3.healed"
cmp "$workdir/fig3.plain" "$workdir/fig3.healed"
echo "    healed merge still byte-identical"

echo "shard smoke: OK"
