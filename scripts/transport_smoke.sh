#!/usr/bin/env bash
# End-to-end smoke test of the remote transport (docs/SCALING.md,
# "Remote transport"): start two real `repro shard worker` processes
# on ephemeral ports, run a sharded ingest over them with
# --transport http, and prove the merged checkpoint is *byte-identical*
# to an unsharded ingest's. Then the failure modes: a worker killed
# mid-run costs reassignment but not correctness, and a pool that is
# entirely dead exits 8 with a typed error.
#
# Run from anywhere; needs only python + numpy. CI runs this as the
# transport-smoke job.
set -eu
cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
worker_pids=""
cleanup() {
    for pid in $worker_pids; do
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$workdir"
}
trap cleanup EXIT

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

# Start one worker, record its pid in $worker_pids and its URL in $url.
start_worker() {
    local dir="$1" banner="$2"
    python -m repro.cli shard worker --workdir "$dir" --port 0 --quiet \
        >"$banner" 2>/dev/null &
    worker_pids="$worker_pids $!"
    for _ in $(seq 50); do
        url="$(sed -n 's|^listening on \(http://[^ ]*\).*|\1|p' "$banner")"
        [ -n "$url" ] && return 0
        sleep 0.1
    done
    echo "FAIL: worker never printed its listening banner"
    exit 1
}

echo "==> generate a tiny study"
python -m repro.cli generate --users 3 --days 4 --seed 11 \
    --out "$workdir/study.npz"

echo "==> unsharded ingest (the reference checkpoint)"
python -m repro.cli ingest --dataset "$workdir/study.npz" \
    --checkpoint "$workdir/plain.ckpt.npz" >/dev/null

echo "==> start two shard workers on ephemeral ports"
start_worker "$workdir/w0" "$workdir/w0.banner"; u0="$url"
start_worker "$workdir/w1" "$workdir/w1.banner"; u1="$url"
echo "    workers: $u0 $u1"

echo "==> sharded ingest over the HTTP worker pool"
python -m repro.cli ingest --dataset "$workdir/study.npz" --shards 3 \
    --checkpoint "$workdir/http.ckpt.npz" --workers "$u0,$u1" >/dev/null

echo "==> merged checkpoint is byte-identical to the unsharded one"
cmp "$workdir/http.ckpt.npz" "$workdir/plain.ckpt.npz" || {
    echo "FAIL: HTTP-sharded checkpoint differs from the unsharded one"
    exit 1
}
echo "    byte-identical"

echo "==> and it derives the unsharded store key (warm --store-only hit)"
python -m repro.cli figure fig3 --from-checkpoint "$workdir/plain.ckpt.npz" \
    --store "$workdir/store" >/dev/null
python -m repro.cli figure fig3 --from-checkpoint "$workdir/http.ckpt.npz" \
    --store "$workdir/store" --store-only >/dev/null || {
    echo "FAIL: store miss — the remote transport changed the store key"
    exit 1
}
echo "    warm hit via the remote-transport key"

echo "==> a worker killed mid-run is reassigned, the merge stays exact"
# Fresh plan + shard dir; kill worker 0 as soon as the run starts, so
# its queue drains to the survivor.
python -m repro.cli shard plan --dataset "$workdir/study.npz" --shards 4 \
    --out "$workdir/plan.json" >/dev/null
set -- $worker_pids
victim_pid="$1"
( sleep 0.5; kill "$victim_pid" 2>/dev/null || true ) &
python -m repro.cli shard run "$workdir/plan.json" \
    --transport http --workers "$u0,$u1" --quiet \
    --metrics-json "$workdir/kill.metrics.json"
python -m repro.cli shard merge "$workdir/plan.json" \
    --out "$workdir/killed.ckpt.npz" >/dev/null
cmp "$workdir/killed.ckpt.npz" "$workdir/plain.ckpt.npz" || {
    echo "FAIL: merge after a mid-run worker kill differs"
    exit 1
}
python - "$workdir/kill.metrics.json" <<'EOF'
import json, sys
counters = json.load(open(sys.argv[1]))["counters"]
assert counters.get("shard.completed", 0) == 4, counters
print(
    "    exact merge; worker_deaths=%d reassignments=%d"
    % (
        counters.get("transport.worker_deaths", 0),
        counters.get("transport.reassignments", 0),
    )
)
EOF

echo "==> a fully dead pool fails typed with exit 8"
python -m repro.cli shard plan --dataset "$workdir/study.npz" --shards 2 \
    --out "$workdir/dead.json" >/dev/null
set +e
python -m repro.cli shard run "$workdir/dead.json" --transport http \
    --workers "http://127.0.0.1:9,http://127.0.0.1:10" --quiet \
    2>"$workdir/dead.err"
code=$?
set -e
if [ "$code" != 8 ]; then
    echo "FAIL: dead pool exited $code, wanted 8"
    cat "$workdir/dead.err"
    exit 1
fi
grep -q "could not be placed" "$workdir/dead.err" || {
    echo "FAIL: no typed transport error on stderr"; cat "$workdir/dead.err"
    exit 1
}
echo "    exit 8 with a typed error naming the shards"

echo "transport smoke: OK"
